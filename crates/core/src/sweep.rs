//! Parallel sweep orchestration: config matrices, a bounded worker
//! pool, and aggregated scaling reports.
//!
//! The paper's central evidence is *scaling behaviour* — the same SPMD
//! programs swept across PE counts on a 16-core Epiphany-III mesh and a
//! Cray XC40. [`SweepSpec`] makes that the default workflow instead of
//! a hand-rolled loop: describe a cartesian product of PE counts ×
//! seeds × latency models × barrier algorithms × lock algorithms ×
//! backends, and [`SweepSpec::run`] dispatches
//! the independent jobs onto a bounded pool of scoped OS threads,
//! reusing one [`Compiled`] artifact throughout. Results come back in
//! config order regardless of completion order, so a sweep is
//! reproducible no matter how many workers ran it.
//!
//! ```
//! use lolcode::{compile, SweepSpec};
//!
//! let artifact = compile("HAI 1.2\nVISIBLE \"HAI \" ME\nKTHXBYE").unwrap();
//! let report = SweepSpec::new().pes([1, 2, 4]).seeds([7, 8]).run(&artifact);
//! assert_eq!(report.entries.len(), 6);
//! println!("{}", report.speedup_table());
//! ```
//!
//! [`SweepReport`] aggregates the per-config [`RunReport`]s into the
//! derived metrics a scaling figure needs — speedup vs. the 1-PE
//! baseline of the same (backend, latency, barrier, lock, seed) group,
//! parallel
//! efficiency, cross-backend wall-time ratios against the interpreter
//! (vm-over-interp, c-over-interp, per identical config), and job-wide
//! communication totals — and serializes to JSON without any external
//! dependency ([`SweepReport::to_json`]).
//!
//! Two scheduler/reporting refinements matter at scale:
//!
//! * **Thread budget** ([`SweepSpec::threads`]): every config is
//!   weighted by the OS threads it really occupies — PE count for the
//!   threaded backends, the scheduler's worker count for the sim
//!   backend — and jobs only launch while the in-flight weight fits
//!   the budget, so `jobs × PEs` can't oversubscribe the machine and a
//!   mega-scale sim config doesn't hog a budget it never uses.
//! * **Streaming** ([`SweepSpec::run_with`] + [`jsonl_record`]): each
//!   entry can be emitted as a JSONL record the moment it completes,
//!   so a big matrix is inspectable mid-run and a killed sweep keeps
//!   everything already finished.

use crate::{
    engine_for, Backend, BarrierKind, ClockMode, Compiled, LatencyModel, LockKind, LolError,
    RunConfig, RunReport,
};
use std::collections::HashSet;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// SweepSpec
// ---------------------------------------------------------------------

/// Hard cap on one sweep's config count — a typo'd spec
/// (`pes=1..4000000000`) must fail fast, not allocate for hours.
pub const MAX_CONFIGS: usize = 100_000;

/// Hard cap on the values one spec-string axis clause may expand to.
const MAX_AXIS_VALUES: u64 = 65_536;

/// A cartesian product of run configurations plus a worker budget.
///
/// Axes left unset fall back to the base config's single value, so a
/// spec is never empty: `SweepSpec::new()` describes exactly one run.
///
/// ```
/// use lolcode::{BarrierKind, LockKind, SweepSpec};
///
/// // The full interconnect × synchronization ablation matrix:
/// // 2 latencies × 2 barriers × 2 locks × 3 PE counts = 24 configs.
/// let spec = SweepSpec::new()
///     .pes([1, 2, 4])
///     .latencies(["flat".parse().unwrap(), "mesh".parse().unwrap()])
///     .barriers(BarrierKind::ALL)
///     .locks(LockKind::ALL);
/// assert_eq!(spec.configs().len(), 24);
///
/// // The same matrix as a `lolrun --sweep` spec string.
/// let parsed = SweepSpec::parse(
///     "latency=flat,mesh;barrier=central,dissem;lock=cas,ticket;pes=1,2,4",
///     lolcode::RunConfig::new(1),
/// )
/// .unwrap();
/// assert_eq!(parsed.configs().len(), 24);
/// ```
#[derive(Clone, Debug)]
pub struct SweepSpec {
    base: RunConfig,
    pes: Vec<usize>,
    seeds: Vec<u64>,
    latencies: Vec<LatencyModel>,
    barriers: Vec<BarrierKind>,
    locks: Vec<LockKind>,
    clocks: Vec<ClockMode>,
    backends: Vec<Backend>,
    jobs: usize,
    threads: usize,
}

impl Default for SweepSpec {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepSpec {
    /// An empty spec over the default [`RunConfig`]: one config, auto
    /// worker count.
    pub fn new() -> Self {
        Self::over(RunConfig::new(1))
    }

    /// An empty spec whose unset axes inherit from `base` (timeout,
    /// input and heap size always do).
    pub fn over(base: RunConfig) -> Self {
        SweepSpec {
            base,
            pes: Vec::new(),
            seeds: Vec::new(),
            latencies: Vec::new(),
            barriers: Vec::new(),
            locks: Vec::new(),
            clocks: Vec::new(),
            backends: Vec::new(),
            jobs: 0,
            threads: 0,
        }
    }

    /// Sweep these PE counts (innermost axis).
    pub fn pes(mut self, pes: impl IntoIterator<Item = usize>) -> Self {
        self.pes = pes.into_iter().collect();
        self
    }

    /// Sweep these RNG seeds.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sweep `count` seeds derived from the base config's seed
    /// (`base.seed + 0 .. base.seed + count`).
    pub fn seed_count(mut self, count: u64) -> Self {
        let base = self.base.seed;
        self.seeds = (0..count).map(|i| base.wrapping_add(i)).collect();
        self
    }

    /// Sweep these latency models.
    pub fn latencies(mut self, models: impl IntoIterator<Item = LatencyModel>) -> Self {
        self.latencies = models.into_iter().collect();
        self
    }

    /// Sweep these barrier algorithms (ablation axis; see
    /// [`BarrierKind::ALL`]).
    pub fn barriers(mut self, kinds: impl IntoIterator<Item = BarrierKind>) -> Self {
        self.barriers = kinds.into_iter().collect();
        self
    }

    /// Sweep these lock algorithms (ablation axis; see
    /// [`LockKind::ALL`]).
    pub fn locks(mut self, kinds: impl IntoIterator<Item = LockKind>) -> Self {
        self.locks = kinds.into_iter().collect();
        self
    }

    /// Sweep these clock modes (see [`ClockMode::ALL`]). Virtual-time
    /// entries carry deterministic virtual walls, which feed the
    /// speedup/efficiency columns for their group — so a
    /// `clock=virtual` sweep produces machine-independent scaling
    /// curves.
    pub fn clocks(mut self, modes: impl IntoIterator<Item = ClockMode>) -> Self {
        self.clocks = modes.into_iter().collect();
        self
    }

    /// Sweep these backends (outermost axis).
    pub fn backends(mut self, backends: impl IntoIterator<Item = Backend>) -> Self {
        self.backends = backends.into_iter().collect();
        self
    }

    /// Cap the worker pool at `jobs` concurrent SPMD jobs. `0` (the
    /// default) means `min(available cores, number of configs)`.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Set the global *thread* budget: the scheduler weights every
    /// queued config by its PE count, and only starts a job when the
    /// in-flight PE threads plus the job's own fit inside the budget —
    /// so `jobs × PEs` can never oversubscribe the machine, no matter
    /// how wide the worker pool is. `0` (the default) means the number
    /// of available cores. A single config wider than the whole budget
    /// still runs — alone.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The worker cap (`0` = auto).
    pub fn jobs_requested(&self) -> usize {
        self.jobs
    }

    /// The thread budget (`0` = auto: available cores).
    pub fn threads_requested(&self) -> usize {
        self.threads
    }

    /// The thread budget a run would actually enforce.
    pub fn effective_thread_budget(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }

    /// The explicitly-set backend axis (empty = inherit the base
    /// config's backend). Lets callers distinguish "unset" from "set"
    /// before layering their own default on top.
    pub fn backends_requested(&self) -> &[Backend] {
        &self.backends
    }

    /// The worker count a sweep of `n_configs` would actually use.
    pub fn effective_jobs(&self, n_configs: usize) -> usize {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let cap = if self.jobs > 0 { self.jobs } else { cores };
        cap.min(n_configs).max(1)
    }

    /// Materialize the cartesian product, in deterministic order:
    /// backends × clocks × latencies × barriers × locks × seeds × PE
    /// counts (PE count innermost, so consecutive entries form a
    /// scaling curve).
    pub fn configs(&self) -> Vec<RunConfig> {
        fn one<T: Clone>(v: &[T], fallback: T) -> Vec<T> {
            if v.is_empty() {
                vec![fallback]
            } else {
                v.to_vec()
            }
        }
        let backends = one(&self.backends, self.base.backend);
        let clocks = one(&self.clocks, self.base.clock);
        let latencies = one(&self.latencies, self.base.latency);
        let barriers = one(&self.barriers, self.base.barrier);
        let locks = one(&self.locks, self.base.lock);
        let seeds = one(&self.seeds, self.base.seed);
        let pes = one(&self.pes, self.base.n_pes);
        let mut out = Vec::with_capacity(
            backends.len()
                * clocks.len()
                * latencies.len()
                * barriers.len()
                * locks.len()
                * seeds.len()
                * pes.len(),
        );
        for &backend in &backends {
            for &clock in &clocks {
                for &latency in &latencies {
                    for &barrier in &barriers {
                        for &lock in &locks {
                            for &seed in &seeds {
                                for &n_pes in &pes {
                                    out.push(
                                        self.base
                                            .clone()
                                            .backend(backend)
                                            .clock(clock)
                                            .latency(latency)
                                            .barrier(barrier)
                                            .lock(lock)
                                            .seed(seed)
                                            .pes(n_pes),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Check the spec axis-by-axis (bad latency models, zero PE
    /// counts, absurd matrix sizes) without materializing the product.
    pub fn validate(&self) -> Result<(), LolError> {
        if let Some(&n) = self.pes.iter().find(|&&n| n == 0) {
            return Err(LolError::Config(format!(
                "O NOES! [RUN0121] A JOB NEEDS AT LEAST ONE PE, NOT {n}"
            )));
        }
        for m in &self.latencies {
            m.validate().map_err(LolError::Config)?;
        }
        self.base.validate()?;
        let total = self
            .pes
            .len()
            .max(1)
            .saturating_mul(self.seeds.len().max(1))
            .saturating_mul(self.latencies.len().max(1))
            .saturating_mul(self.barriers.len().max(1))
            .saturating_mul(self.locks.len().max(1))
            .saturating_mul(self.clocks.len().max(1))
            .saturating_mul(self.backends.len().max(1));
        if total > MAX_CONFIGS {
            return Err(LolError::Config(format!(
                "O NOES! DIS SWEEP HAZ {total} CONFIGS — MAX IZ {MAX_CONFIGS}"
            )));
        }
        Ok(())
    }

    /// Run the whole product against one artifact on a bounded worker
    /// pool and aggregate the results.
    ///
    /// Jobs are claimed from a shared queue by up to `effective_jobs`
    /// scoped OS threads, under the global [thread
    /// budget][SweepSpec::threads]: each config weighs its PE count,
    /// and a worker only starts a job when the in-flight weight plus
    /// the job's own fits the budget (a job at least as wide as the
    /// whole budget runs alone). Each result lands in its config-order
    /// slot, so the report's outputs and stats are identical whether
    /// one worker ran everything serially or the whole pool raced.
    /// Wall times are *not*: concurrent jobs contend for cores,
    /// biasing per-config walls (and the speedup/efficiency columns
    /// derived from them) upward — use [`SweepSpec::jobs`]`(1)` when
    /// the timing columns are the result. A failing config records its
    /// error and does not abort the rest.
    pub fn run(&self, artifact: &Compiled) -> SweepReport {
        self.run_with(artifact, |_, _, _| {})
    }

    /// [`SweepSpec::run`], streaming: `on_entry(index, config, result)`
    /// fires as each config *completes* (completion order, not config
    /// order — the index says which slot it is), before the aggregated
    /// report exists. This is what `lolrun --json-lines` rides: big
    /// matrices become inspectable mid-run, and a killed sweep leaves
    /// every finished entry on record. Derived columns (speedup,
    /// vs-interp ratios) need the whole matrix and therefore only
    /// appear in the final [`SweepReport`].
    ///
    /// Callbacks may fire concurrently from different worker threads;
    /// use [`jsonl_record`] (or your own locking) for serialized
    /// output.
    pub fn run_with(
        &self,
        artifact: &Compiled,
        on_entry: impl Fn(usize, &RunConfig, &Result<RunReport, LolError>) + Sync,
    ) -> SweepReport {
        self.run_inner(artifact, &|_| false, &on_entry)
    }

    /// [`SweepSpec::run_with`], resuming a previous sweep: any config
    /// whose [`config_key`] appears in `done` (the ok entries of a
    /// prior `--json-lines` file — see [`parse_jsonl_done`]) is not
    /// re-run; its slot records [`LolError::Skipped`] instead, which
    /// counts as neither a success nor a failure. Missing and failed
    /// configs run normally, so `lolrun --sweep … --resume prev.jsonl`
    /// finishes exactly the work a killed or extended sweep left over.
    pub fn run_resumable(
        &self,
        artifact: &Compiled,
        done: &HashSet<String>,
        on_entry: impl Fn(usize, &RunConfig, &Result<RunReport, LolError>) + Sync,
    ) -> SweepReport {
        self.run_inner(artifact, &|cfg| done.contains(&config_key(cfg)), &on_entry)
    }

    fn run_inner(
        &self,
        artifact: &Compiled,
        skip: &(dyn Fn(&RunConfig) -> bool + Sync),
        on_entry: &dyn EntryCallback,
    ) -> SweepReport {
        let exec = |cfg: &RunConfig| -> Result<RunReport, LolError> {
            if skip(cfg) {
                Err(LolError::Skipped("DUN THIS ONE ALREADY (--resume)".to_string()))
            } else {
                engine_for(cfg.backend).run(artifact, cfg)
            }
        };
        let configs = self.configs();
        let n = configs.len();
        let workers = self.effective_jobs(n);
        let budget = self.effective_thread_budget();
        let weight = |cfg: &RunConfig| config_weight(cfg, budget);
        let t0 = Instant::now();
        let mut slots: Vec<Mutex<Option<Result<RunReport, LolError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();

        if workers <= 1 {
            for (i, (cfg, slot)) in configs.iter().zip(&mut slots).enumerate() {
                let result = exec(cfg);
                on_entry(i, cfg, &result);
                *slot.get_mut().unwrap() = Some(result);
            }
        } else {
            struct Sched {
                claimed: Vec<bool>,
                in_flight: usize,
            }
            let sched = Mutex::new(Sched { claimed: vec![false; n], in_flight: 0 });
            let turnstile = Condvar::new();
            // Returns the claimed weight and wakes budget waiters even
            // if the job body panics (engine bug or user callback) —
            // otherwise a worker parked in `turnstile.wait` would
            // sleep forever and the scope join (which re-raises the
            // panic) would never be reached. Locks are poison-tolerant
            // for the same reason.
            struct BudgetGuard<'a> {
                sched: &'a Mutex<Sched>,
                turnstile: &'a Condvar,
                weight: usize,
            }
            impl Drop for BudgetGuard<'_> {
                fn drop(&mut self) {
                    self.sched
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .in_flight -= self.weight;
                    self.turnstile.notify_all();
                }
            }
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = {
                            let mut st =
                                sched.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                            loop {
                                if st.claimed.iter().all(|&c| c) {
                                    return; // queue drained
                                }
                                // First unclaimed config whose PE
                                // weight fits the remaining budget
                                // (weights never exceed the budget, so
                                // an idle pool always finds one).
                                let fit = (0..n).find(|&i| {
                                    !st.claimed[i] && st.in_flight + weight(&configs[i]) <= budget
                                });
                                match fit {
                                    Some(i) => {
                                        st.claimed[i] = true;
                                        st.in_flight += weight(&configs[i]);
                                        break i;
                                    }
                                    None => {
                                        st = turnstile
                                            .wait(st)
                                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                                    }
                                }
                            }
                        };
                        let _return_budget = BudgetGuard {
                            sched: &sched,
                            turnstile: &turnstile,
                            weight: weight(&configs[i]),
                        };
                        let result = exec(&configs[i]);
                        on_entry(i, &configs[i], &result);
                        *slots[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                            Some(result);
                    });
                }
            });
        }

        let results = slots
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("every sweep slot filled"))
            .collect();
        SweepReport::assemble(configs, results, workers, t0.elapsed())
    }

    /// Parse a `lolrun --sweep` spec string on top of `base`.
    ///
    /// Grammar: semicolon-separated `key=value` clauses —
    ///
    /// * `pes=1..16` or `pes=1,2,4,8` — PE counts (`a..b` inclusive).
    ///   Mega-scale sugar: `k`/`m` suffixes scale by 1024/1048576
    ///   (`pes=1k,64k,1m`), and `pes=2^0..2^20` expands to the
    ///   powers of two in the exponent range — the idiomatic spelling
    ///   of a simulator scaling curve
    /// * `seeds=3` — 3 seeds derived from the base seed;
    ///   `seeds=7,9` or `seeds=0..2` — explicit seed values
    /// * `latency=off,mesh:4,torus:4x4,flat:1000` — latency models
    ///   (see [`LatencyModel::from_str`][std::str::FromStr])
    /// * `barrier=central,dissem` — barrier algorithms (ablation axis)
    /// * `lock=cas,ticket` — lock algorithms (ablation axis)
    /// * `clock=wall,virtual` — latency clock modes; `virtual` rows
    ///   report deterministic virtual walls
    /// * `backend=interp,vm,c,sim` — engines to sweep; `both` expands
    ///   to `interp,vm`, `all` to every registered backend
    /// * `trace=65536` or `trace=64k@256` — record communication
    ///   events under a *global* event budget, sampling every
    ///   `stride`-th PE (see [`crate::TraceSpec`]); keeps tracing
    ///   memory-bounded at mega-scale PE counts
    /// * `jobs=4` — worker cap (`0` = auto)
    /// * `threads=8` — global PE-thread budget (`0` = auto: cores)
    /// * `sim-jobs=4` — worker threads for every sim-backend config
    ///   (`0` = auto, `1` = exact sequential scheduler); outputs are
    ///   byte-identical at any setting
    ///
    /// Example: `"pes=1..16;seeds=3;latency=off,mesh:4"` or
    /// `"backend=all;latency=flat,mesh;barrier=central,dissem;lock=cas,ticket;pes=1,2,4"`.
    pub fn parse(spec: &str, base: RunConfig) -> Result<SweepSpec, String> {
        let mut out = SweepSpec::over(base);
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("O NOES! SWEEP CLAUSE NEEDS key=value, GOT: {clause}"))?;
            match key.trim() {
                "pes" => out.pes = parse_pe_list(value).map_err(|e| format!("pes: {e}"))?,
                "seeds" => {
                    let v = value.trim();
                    if !v.contains(',') && !v.contains("..") {
                        let count: u64 = v
                            .parse()
                            .map_err(|_| format!("O NOES! seeds WANTS A NUMBR, GOT: {v}"))?;
                        if count == 0 || count > MAX_AXIS_VALUES {
                            return Err(format!(
                                "O NOES! seeds WANTS 1..{MAX_AXIS_VALUES} SEEDS, NOT {count}"
                            ));
                        }
                        out = out.seed_count(count);
                    } else {
                        out.seeds = parse_int_list(value).map_err(|e| format!("seeds: {e}"))?;
                    }
                }
                "latency" => {
                    out.latencies = value
                        .split(',')
                        .map(|tok| tok.trim().parse::<LatencyModel>())
                        .collect::<Result<_, _>>()?;
                }
                "barrier" | "barriers" => {
                    out.barriers = value
                        .split(',')
                        .map(|tok| tok.trim().parse::<BarrierKind>())
                        .collect::<Result<_, _>>()?;
                }
                "lock" | "locks" => {
                    out.locks = value
                        .split(',')
                        .map(|tok| tok.trim().parse::<LockKind>())
                        .collect::<Result<_, _>>()?;
                }
                "clock" | "clocks" => {
                    out.clocks = value
                        .split(',')
                        .map(|tok| tok.trim().parse::<ClockMode>())
                        .collect::<Result<_, _>>()?;
                }
                "backend" | "backends" => {
                    let mut backends = Vec::new();
                    for tok in value.split(',') {
                        match tok.trim() {
                            "both" => backends.extend([Backend::Interp, Backend::Vm]),
                            "all" => backends.extend(Backend::ALL),
                            other => backends.push(other.parse::<Backend>().map_err(|_| {
                                format!(
                                    "O NOES! backend IZ interp, vm, c, sim, both OR all, NOT {other}"
                                )
                            })?),
                        }
                    }
                    out.backends = backends;
                }
                "trace" => {
                    out.base = out.base.trace_spec(
                        value.trim().parse().map_err(|e: String| format!("trace: {e}"))?,
                    );
                }
                "jobs" => {
                    out.jobs = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("O NOES! jobs WANTS A NUMBR, GOT: {value}"))?;
                }
                "sim-jobs" | "sim_jobs" => {
                    out.base =
                        out.base.sim_jobs(value.trim().parse().map_err(|_| {
                            format!("O NOES! sim-jobs WANTS A NUMBR, GOT: {value}")
                        })?);
                }
                "threads" => {
                    out.threads = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("O NOES! threads WANTS A NUMBR, GOT: {value}"))?;
                }
                other => return Err(format!("O NOES! I DUNNO DIS SWEEP AXIS: {other}")),
            }
        }
        out.validate().map_err(|e| e.to_string())?;
        Ok(out)
    }
}

/// The thread-budget weight of one config: how many OS threads it
/// actually occupies while running. The threaded backends spawn one
/// thread per PE, so they weigh their PE count. The sim backend runs
/// any PE count on its scheduler's bounded worker pool, so it weighs
/// the worker count it will really use ([`lol_sim::planned_jobs`]) —
/// weighing a 65,536-PE sim config as 65,536 threads would make every
/// mega-scale sim run hog the whole budget and serialize the sweep.
/// Weights cap at the budget so an over-wide job still runs (alone).
///
/// Public because the `lold` playground service gates request
/// admission on the same weighting: a 64k-PE sim request weighs its
/// scheduler's worker count, not 64k threads, so it can't starve the
/// service's worker pool any more than it can starve a sweep.
pub fn config_weight(cfg: &RunConfig, budget: usize) -> usize {
    let threads = match cfg.backend {
        Backend::Sim => lol_sim::planned_jobs(&cfg.shmem()),
        _ => cfg.n_pes,
    };
    threads.clamp(1, budget)
}

/// The streaming per-entry callback shape `run_with`/`run_resumable`
/// share (a named trait keeps the internal dispatch signature
/// readable).
trait EntryCallback: Fn(usize, &RunConfig, &Result<RunReport, LolError>) + Sync {}
impl<T: Fn(usize, &RunConfig, &Result<RunReport, LolError>) + Sync> EntryCallback for T {}

/// One PE-count token with mega-scale suffixes: `64`, `64k` (×1024),
/// `1m` (×1048576). Overflow is a parse error, never a wrap.
fn parse_pe_token(tok: &str) -> Result<u64, String> {
    let tok = tok.trim();
    let (digits, scale) = match tok.chars().last() {
        Some('k') | Some('K') => (&tok[..tok.len() - 1], 1024u64),
        Some('m') | Some('M') => (&tok[..tok.len() - 1], 1024 * 1024),
        _ => (tok, 1),
    };
    let n: u64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("O NOES! {tok} IZ NOT A PE COUNT (try 64, 64k OR 1m)"))?;
    n.checked_mul(scale).ok_or_else(|| format!("O NOES! {tok} IZ 2 BIG"))
}

/// Parse the `pes=` axis: comma-separated counts with `k`/`m`
/// suffixes, inclusive `a..b` ranges, and `2^a..2^b` powers-of-two
/// ranges (`2^0..2^20` → 1, 2, 4, …, 1048576 — the idiomatic spelling
/// of a simulator scaling sweep).
fn parse_pe_list(s: &str) -> Result<Vec<usize>, String> {
    let to_usize =
        |v: u64, tok: &str| usize::try_from(v).map_err(|_| format!("O NOES! {tok} IZ 2 BIG"));
    let mut out = Vec::new();
    for tok in s.split(',') {
        let tok = tok.trim();
        if let Some((lo, hi)) = tok.split_once("..") {
            let (lo, hi) = (lo.trim(), hi.trim());
            if lo.starts_with("2^") || hi.starts_with("2^") {
                let exp = |t: &str| -> Result<u32, String> {
                    let e: u32 = t
                        .strip_prefix("2^")
                        .ok_or_else(|| format!("O NOES! MIXED RANGE {tok} — BOTH ENDS NEED 2^"))?
                        .trim()
                        .parse()
                        .map_err(|_| format!("O NOES! {t} IZ NOT A POWER OF 2"))?;
                    if e >= 64 {
                        return Err(format!("O NOES! {t} IZ 2 BIG"));
                    }
                    Ok(e)
                };
                let (lo, hi) = (exp(lo)?, exp(hi)?);
                if lo > hi {
                    return Err(format!("O NOES! BACKWARDS RANGE: {tok}"));
                }
                for e in lo..=hi {
                    out.push(to_usize(1u64 << e, tok)?);
                }
            } else {
                let (lo, hi) = (parse_pe_token(lo)?, parse_pe_token(hi)?);
                if lo > hi {
                    return Err(format!("O NOES! BACKWARDS RANGE: {tok}"));
                }
                if hi - lo >= MAX_AXIS_VALUES {
                    return Err(format!(
                        "O NOES! RANGE {tok} HAZ 2 MANY VALUES (MAX {MAX_AXIS_VALUES})"
                    ));
                }
                for v in lo..=hi {
                    out.push(to_usize(v, tok)?);
                }
            }
        } else {
            out.push(to_usize(parse_pe_token(tok)?, tok)?);
        }
    }
    if out.is_empty() {
        return Err("O NOES! EMPTY LIST".to_string());
    }
    Ok(out)
}

/// Parse `1,2,4` / `1..8` / mixtures of both into a list, preserving
/// order. `a..b` is inclusive on both ends.
fn parse_int_list<T>(s: &str) -> Result<Vec<T>, String>
where
    T: std::str::FromStr + TryFrom<u64>,
{
    let mut out = Vec::new();
    for tok in s.split(',') {
        let tok = tok.trim();
        if let Some((lo, hi)) = tok.split_once("..") {
            let parse = |t: &str| {
                t.trim()
                    .parse::<u64>()
                    .map_err(|_| format!("O NOES! {t} IZ NOT A NUMBR IN RANGE {tok}"))
            };
            let (lo, hi) = (parse(lo)?, parse(hi)?);
            if lo > hi {
                return Err(format!("O NOES! BACKWARDS RANGE: {tok}"));
            }
            if hi - lo >= MAX_AXIS_VALUES {
                return Err(format!(
                    "O NOES! RANGE {tok} HAZ 2 MANY VALUES (MAX {MAX_AXIS_VALUES})"
                ));
            }
            for v in lo..=hi {
                out.push(T::try_from(v).map_err(|_| format!("O NOES! {v} IZ 2 BIG"))?);
            }
        } else {
            out.push(tok.parse().map_err(|_| format!("O NOES! {tok} IZ NOT A NUMBR"))?);
        }
    }
    if out.is_empty() {
        return Err("O NOES! EMPTY LIST".to_string());
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// SweepReport
// ---------------------------------------------------------------------

/// One config's slot in a sweep: the config, its outcome, and metrics
/// derived against the sweep's baselines.
#[derive(Clone, Debug)]
pub struct SweepEntry {
    /// The effective configuration (includes the backend).
    pub config: RunConfig,
    /// The run's outcome; failures don't abort the sweep.
    pub result: Result<RunReport, LolError>,
    /// Wall-time speedup vs. the 1-PE entry of the same
    /// (backend, latency, seed) group, when that baseline exists.
    ///
    /// Timing caveat: with more than one worker, concurrently-running
    /// jobs contend for cores, which *systematically* inflates walls
    /// (the 1-PE baseline most of all) — outputs and stats are exact
    /// at any worker count, but publication-grade speedup curves
    /// should come from a [`SweepSpec::jobs`]`(1)` sweep.
    pub speedup: Option<f64>,
    /// `speedup / n_pes` — parallel efficiency.
    pub efficiency: Option<f64>,
    /// Cross-backend ratio: the interpreter's wall time at the *same*
    /// (latency, seed, PE count) divided by this entry's — i.e. how
    /// many times faster than interp this backend ran this config
    /// (> 1 = faster). `Some(≈1.0)` on interp entries themselves,
    /// `None` when the matrix has no matching interp entry. The same
    /// multi-worker timing caveat as [`SweepEntry::speedup`] applies.
    pub vs_interp: Option<f64>,
}

impl SweepEntry {
    /// FNV-1a hash over the per-PE outputs (stable fingerprint for
    /// machine-readable reports without embedding full outputs).
    pub fn output_hash(&self) -> Option<u64> {
        self.result.as_ref().ok().map(output_hash)
    }

    /// Did this config fail only because the engine can't run here
    /// (e.g. C backend without a compiler)?
    pub fn is_unsupported(&self) -> bool {
        matches!(&self.result, Err(e) if e.is_unsupported())
    }

    /// Was this config deliberately not run (resumed sweep found it
    /// already completed)?
    pub fn is_skipped(&self) -> bool {
        matches!(&self.result, Err(e) if e.is_skipped())
    }
}

/// The identity of a config inside a sweep matrix, as a stable string
/// key: `backend|latency|barrier|lock|clock|seed|pes`. Resume matching
/// ([`SweepSpec::run_resumable`]) and the JSONL done-set parser agree
/// on this format.
pub fn config_key(c: &RunConfig) -> String {
    format!(
        "{}|{}|{}|{}|{}|{}|{}",
        c.backend, c.latency, c.barrier, c.lock, c.clock, c.seed, c.n_pes
    )
}

/// Collect the [`config_key`]s of every *successful* entry in a
/// previous sweep's `--json-lines` output. Feed the result to
/// [`SweepSpec::run_resumable`] to re-run only the missing/failed
/// configs. Records without a `clock` field (pre-virtual-time files)
/// parse as `wall`; summary records and malformed lines are ignored.
pub fn parse_jsonl_done(text: &str) -> HashSet<String> {
    let str_field = |line: &str, name: &str| -> Option<String> {
        let tag = format!("\"{name}\": \"");
        let start = line.find(&tag)? + tag.len();
        Some(line[start..].split('"').next()?.to_string())
    };
    let num_field = |line: &str, name: &str| -> Option<u64> {
        let tag = format!("\"{name}\": ");
        let start = line.find(&tag)? + tag.len();
        let digits: String = line[start..].chars().take_while(char::is_ascii_digit).collect();
        digits.parse().ok()
    };
    let mut done = HashSet::new();
    for line in text.lines() {
        if !line.contains("\"ok\": true") || line.contains("\"summary\"") {
            continue;
        }
        let (Some(backend), Some(latency), Some(barrier), Some(lock)) = (
            str_field(line, "backend"),
            str_field(line, "latency"),
            str_field(line, "barrier"),
            str_field(line, "lock"),
        ) else {
            continue;
        };
        let clock = str_field(line, "clock").unwrap_or_else(|| "wall".to_string());
        let (Some(seed), Some(pes)) = (num_field(line, "seed"), num_field(line, "pes")) else {
            continue;
        };
        done.insert(format!("{backend}|{latency}|{barrier}|{lock}|{clock}|{seed}|{pes}"));
    }
    done
}

/// FNV-1a hash over per-PE outputs (stable fingerprint for
/// machine-readable reports without embedding full outputs).
pub(crate) fn output_hash(report: &RunReport) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for out in &report.outputs {
        eat(out.as_bytes());
        eat(&[0x1E]); // record separator: "a","" != "","a"
    }
    h
}

/// One self-contained JSONL record for a completed config — the
/// streaming (`--json-lines`) serialization, also usable straight from
/// a [`SweepSpec::run_with`] callback. Contains the config, outcome,
/// wall time, output hash and comm stats; matrix-derived columns
/// (speedup/efficiency/vs-interp) don't exist until the sweep ends and
/// are deliberately absent.
pub fn jsonl_record(
    index: usize,
    config: &RunConfig,
    result: &Result<RunReport, LolError>,
) -> String {
    let mut out = String::from("{");
    push_config_json(&mut out, index, config);
    match result {
        Ok(r) => {
            out.push_str("\"ok\": true, ");
            out.push_str(&format!("\"wall_ns\": {}, ", r.wall.as_nanos()));
            // Real host time, distinct from `wall_ns` on the sim
            // backend (whose wall is the *simulated* makespan) — this
            // is the number absolute perf gates compare.
            out.push_str(&format!("\"host_wall_ns\": {}, ", r.host_wall.as_nanos()));
            if let Some(vw) = r.virtual_wall {
                out.push_str(&format!("\"virtual_wall_ns\": {}, ", vw.as_nanos()));
            }
            out.push_str(&format!("\"output_hash\": \"{:016x}\", ", output_hash(r)));
            push_stats_json(&mut out, r);
        }
        Err(err) => push_error_json(&mut out, err),
    }
    out.push('}');
    out
}

/// The shared per-entry identification prefix (`"index"` through
/// `"lock"`), used by both the streaming records and the final
/// report so the two serializations can never drift apart.
fn push_config_json(out: &mut String, index: usize, config: &RunConfig) {
    out.push_str(&format!("\"index\": {index}, "));
    push_config_fields(out, config);
}

/// The config-identity fields alone (`"backend"` through `"clock"`),
/// shared with the single-run report JSON the playground service and
/// `lolrun --json` emit ([`crate::service::run_report_json`]) — one
/// serialization, three surfaces.
pub(crate) fn push_config_fields(out: &mut String, config: &RunConfig) {
    out.push_str(&format!("\"backend\": \"{}\", ", config.backend));
    out.push_str(&format!("\"pes\": {}, ", config.n_pes));
    out.push_str(&format!("\"seed\": {}, ", config.seed));
    out.push_str(&format!("\"latency\": \"{}\", ", config.latency));
    out.push_str(&format!("\"barrier\": \"{}\", ", config.barrier));
    out.push_str(&format!("\"lock\": \"{}\", ", config.lock));
    out.push_str(&format!("\"clock\": \"{}\", ", config.clock));
}

/// The shared failure arm: `"ok": false` plus the unsupported/skipped
/// flags and the rendered error.
fn push_error_json(out: &mut String, err: &LolError) {
    out.push_str("\"ok\": false, ");
    if err.is_unsupported() {
        out.push_str("\"unsupported\": true, ");
    }
    if err.is_skipped() {
        out.push_str("\"skipped\": true, ");
    }
    out.push_str(&format!("\"error\": \"{}\"", json_escape(&err.to_string())));
}

/// The shared `"stats": {...}` object (job-wide totals).
pub(crate) fn push_stats_json(out: &mut String, r: &RunReport) {
    let t = r.total_stats();
    out.push_str(&format!(
        "\"stats\": {{\"local_gets\": {}, \"remote_gets\": {}, \
         \"local_puts\": {}, \"remote_puts\": {}, \
         \"block_get_words\": {}, \"block_put_words\": {}, \
         \"amos\": {}, \"barriers_per_pe\": {}, \
         \"lock_acquires\": {}, \"remote_fraction\": {:.4}}}",
        t.local_gets,
        t.remote_gets,
        t.local_puts,
        t.remote_puts,
        t.block_get_words,
        t.block_put_words,
        t.amos,
        r.stats.first().map(|s| s.barriers).unwrap_or(0),
        t.lock_acquires,
        t.remote_fraction(),
    ));
}

/// Aggregated result of a [`SweepSpec::run`]: entries in config order
/// plus derived scaling metrics.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// One entry per config, in [`SweepSpec::configs`] order.
    pub entries: Vec<SweepEntry>,
    /// Worker threads the scheduler actually used.
    pub jobs: usize,
    /// Wall-clock time of the whole sweep (launch to last join).
    pub total_wall: Duration,
}

impl SweepReport {
    fn assemble(
        configs: Vec<RunConfig>,
        results: Vec<Result<RunReport, LolError>>,
        jobs: usize,
        total_wall: Duration,
    ) -> Self {
        let mut entries: Vec<SweepEntry> = configs
            .into_iter()
            .zip(results)
            .map(|(config, result)| SweepEntry {
                config,
                result,
                speedup: None,
                efficiency: None,
                vs_interp: None,
            })
            .collect();
        // Scaling baselines: the 1-PE wall time of each
        // (backend, latency, barrier, lock, clock, seed) group — every
        // ablation axis gets its own scaling curve. Virtual-clock
        // groups use their deterministic virtual walls, so their
        // speedup/efficiency columns are machine-independent.
        type GroupKey = (Backend, String, BarrierKind, LockKind, ClockMode, u64);
        let key =
            |c: &RunConfig| (c.backend, c.latency.to_string(), c.barrier, c.lock, c.clock, c.seed);
        let baselines: Vec<(GroupKey, Duration)> = entries
            .iter()
            .filter(|e| e.config.n_pes == 1)
            .filter_map(|e| e.result.as_ref().ok().map(|r| (key(&e.config), r.effective_wall())))
            .collect();
        // Cross-backend baselines: the interpreter's wall time at each
        // (latency, barrier, lock, clock, seed, PE count) — interp is
        // the paper's reference substrate, so every backend reports
        // its factor over it.
        type XKey = (String, BarrierKind, LockKind, ClockMode, u64, usize);
        let xkey =
            |c: &RunConfig| (c.latency.to_string(), c.barrier, c.lock, c.clock, c.seed, c.n_pes);
        let interp_walls: Vec<(XKey, Duration)> = entries
            .iter()
            .filter(|e| e.config.backend == Backend::Interp)
            .filter_map(|e| e.result.as_ref().ok().map(|r| (xkey(&e.config), r.effective_wall())))
            .collect();
        for e in &mut entries {
            let Ok(report) = &e.result else { continue };
            let wall = report.effective_wall().as_secs_f64();
            if wall <= 0.0 {
                continue;
            }
            let k = key(&e.config);
            if let Some((_, base)) = baselines.iter().find(|(bk, _)| *bk == k) {
                let speedup = base.as_secs_f64() / wall;
                e.speedup = Some(speedup);
                e.efficiency = Some(speedup / e.config.n_pes as f64);
            }
            let xk = xkey(&e.config);
            if let Some((_, iw)) = interp_walls.iter().find(|(bk, _)| *bk == xk) {
                e.vs_interp = Some(iw.as_secs_f64() / wall);
            }
        }
        SweepReport { entries, jobs, total_wall }
    }

    /// Number of configs that ran successfully.
    pub fn ok_count(&self) -> usize {
        self.entries.iter().filter(|e| e.result.is_ok()).count()
    }

    /// Did every config succeed?
    pub fn all_ok(&self) -> bool {
        self.ok_count() == self.entries.len()
    }

    /// Configs that failed because the engine can't run on this
    /// machine/config at all (e.g. C backend without a compiler).
    pub fn unsupported_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_unsupported()).count()
    }

    /// Configs a resumed sweep deliberately left alone (already done in
    /// the previous run's JSONL file).
    pub fn skipped_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_skipped()).count()
    }

    /// Real failures: neither ok, unsupported nor skipped. This is
    /// what a CI gate should look at — a sweep that only lost engines
    /// the machine doesn't have (or re-ran a finished matrix) is still
    /// a pass.
    pub fn hard_failure_count(&self) -> usize {
        self.entries.len() - self.ok_count() - self.unsupported_count() - self.skipped_count()
    }

    /// Render a human-readable scaling table (one row per config).
    /// `x-interp` is the cross-backend column: this backend's
    /// wall-time factor over the interpreter on the identical config
    /// (vm-over-interp, c-over-interp, ... — > 1 = faster than
    /// interp). PE counts above 10,000 render in scientific notation
    /// (`6.6e4`, `1.0e6`) so mega-scale sim rows keep the columns
    /// readable.
    pub fn speedup_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<7} {:<16} {:<7} {:<6} {:<7} {:>12} {:>5}  {:>10} {:>8} {:>5} {:>8} {:>8}  outcome\n",
            "backend",
            "latency",
            "barrier",
            "lock",
            "clock",
            "seed",
            "pes",
            "wall",
            "speedup",
            "eff",
            "x-interp",
            "remote%"
        ));
        for e in &self.entries {
            let c = &e.config;
            let opt = |v: Option<f64>, prec: usize| match v {
                Some(v) => format!("{v:.prec$}"),
                None => "-".to_string(),
            };
            match &e.result {
                Ok(r) => {
                    let total = r.total_stats();
                    out.push_str(&format!(
                        "{:<7} {:<16} {:<7} {:<6} {:<7} {:>12} {:>5}  {:>10} {:>8} {:>5} {:>8} \
                         {:>7.1}%  ok\n",
                        c.backend.to_string(),
                        c.latency.to_string(),
                        c.barrier.to_string(),
                        c.lock.to_string(),
                        c.clock.to_string(),
                        c.seed,
                        fmt_pes(c.n_pes),
                        // Virtual rows show their deterministic virtual
                        // wall (the clock column says which is which).
                        format!("{:.1?}", r.effective_wall()),
                        opt(e.speedup, 2),
                        opt(e.efficiency, 2),
                        opt(e.vs_interp, 2),
                        100.0 * total.remote_fraction(),
                    ));
                }
                Err(err) => {
                    let first = err.to_string();
                    let first = first.lines().next().unwrap_or("").to_string();
                    let outcome = if e.is_unsupported() {
                        "UNSUPPORTED"
                    } else if e.is_skipped() {
                        "SKIPPED"
                    } else {
                        "FAILED"
                    };
                    out.push_str(&format!(
                        "{:<7} {:<16} {:<7} {:<6} {:<7} {:>12} {:>5}  {:>10} {:>8} {:>5} {:>8} \
                         {:>8}  {}: {}\n",
                        c.backend.to_string(),
                        c.latency.to_string(),
                        c.barrier.to_string(),
                        c.lock.to_string(),
                        c.clock.to_string(),
                        c.seed,
                        fmt_pes(c.n_pes),
                        "-",
                        "-",
                        "-",
                        "-",
                        "-",
                        outcome,
                        first,
                    ));
                }
            }
        }
        let unsupported = self.unsupported_count();
        let skipped = self.skipped_count();
        out.push_str(&format!(
            "{} configs, {} ok{}{}, {} workers, total wall {:.1?}\n",
            self.entries.len(),
            self.ok_count(),
            if unsupported > 0 {
                format!(" ({unsupported} unsupported here)")
            } else {
                String::new()
            },
            if skipped > 0 { format!(" ({skipped} skipped via --resume)") } else { String::new() },
            self.jobs,
            self.total_wall,
        ));
        out
    }

    /// Machine-readable JSON, including timing-derived fields
    /// (`wall_ns`, `speedup`, `efficiency`, worker count).
    pub fn to_json(&self) -> String {
        self.render_json(true)
    }

    /// JSON with every timing-dependent field omitted: byte-identical
    /// across repeated runs and worker counts for a deterministic
    /// program, so it can be diffed or content-hashed in CI.
    pub fn to_json_stable(&self) -> String {
        self.render_json(false)
    }

    fn render_json(&self, timing: bool) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"configs\": {},\n", self.entries.len()));
        out.push_str(&format!("  \"ok\": {},\n", self.ok_count()));
        if timing {
            out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
            out.push_str(&format!("  \"total_wall_ns\": {},\n", self.total_wall.as_nanos()));
        }
        out.push_str("  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            push_config_json(&mut out, i, &e.config);
            match &e.result {
                Ok(r) => {
                    out.push_str("\"ok\": true, ");
                    if timing {
                        out.push_str(&format!("\"wall_ns\": {}, ", r.wall.as_nanos()));
                        out.push_str(&format!("\"host_wall_ns\": {}, ", r.host_wall.as_nanos()));
                        let opt = |v: Option<f64>| match v {
                            Some(v) => format!("{v:.4}"),
                            None => "null".to_string(),
                        };
                        out.push_str(&format!("\"speedup\": {}, ", opt(e.speedup)));
                        out.push_str(&format!("\"efficiency\": {}, ", opt(e.efficiency)));
                        out.push_str(&format!("\"vs_interp\": {}, ", opt(e.vs_interp)));
                    }
                    // Virtual walls are deterministic, so they belong
                    // in the byte-stable JSON too — that's what lets
                    // CI diff machine-independent timing.
                    if let Some(vw) = r.virtual_wall {
                        out.push_str(&format!("\"virtual_wall_ns\": {}, ", vw.as_nanos()));
                    }
                    out.push_str(&format!(
                        "\"output_hash\": \"{:016x}\", ",
                        e.output_hash().expect("ok entry hashes")
                    ));
                    push_stats_json(&mut out, r);
                }
                Err(err) => push_error_json(&mut out, err),
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// PE counts in tables: exact below 10,000, scientific above (`6.6e4`,
/// `1.0e6`) — a 1M-PE sim row shouldn't blow out the column grid. JSON
/// serializations always carry the exact number.
fn fmt_pes(n: usize) -> String {
    if n > 10_000 {
        format!("{:.1e}", n as f64)
    } else {
        n.to_string()
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, corpus};

    fn base() -> RunConfig {
        RunConfig::new(1).timeout(Duration::from_secs(30))
    }

    #[test]
    fn empty_spec_is_one_config() {
        let configs = SweepSpec::over(base()).configs();
        assert_eq!(configs.len(), 1);
        assert_eq!(configs[0].n_pes, 1);
    }

    #[test]
    fn cartesian_product_order_is_backend_latency_seed_pes() {
        let spec = SweepSpec::over(base())
            .pes([1, 2])
            .seeds([5, 6])
            .latencies([LatencyModel::Off, LatencyModel::xc40()])
            .backends([Backend::Interp, Backend::Vm]);
        let configs = spec.configs();
        assert_eq!(configs.len(), 16);
        // PE count is the innermost axis...
        assert_eq!(configs[0].n_pes, 1);
        assert_eq!(configs[1].n_pes, 2);
        // ...then seeds...
        assert_eq!((configs[0].seed, configs[2].seed), (5, 6));
        // ...then latency, then backend (outermost).
        assert_eq!(configs[4].latency, LatencyModel::xc40());
        assert_eq!(configs[8].backend, Backend::Vm);
    }

    #[test]
    fn run_returns_entries_in_config_order() {
        let artifact = compile(corpus::HELLO_PARALLEL).unwrap();
        let spec = SweepSpec::over(base()).pes([1, 2, 3, 4]).jobs(4);
        let report = spec.run(&artifact);
        assert!(report.all_ok());
        for (i, e) in report.entries.iter().enumerate() {
            assert_eq!(e.config.n_pes, i + 1);
            let r = e.result.as_ref().unwrap();
            assert_eq!(r.outputs.len(), i + 1);
            assert_eq!(r.output(0), format!("HAI ITZ 0 OF {}\n", i + 1));
        }
    }

    #[test]
    fn speedup_and_efficiency_derive_from_1pe_baseline() {
        let artifact = compile(corpus::HELLO_PARALLEL).unwrap();
        let report = SweepSpec::over(base()).pes([1, 4]).run(&artifact);
        let one = &report.entries[0];
        assert_eq!(one.speedup.map(|s| (s * 100.0).round()), Some(100.0), "baseline speedup is 1");
        assert_eq!(one.efficiency.map(|s| (s * 100.0).round()), Some(100.0));
        let four = &report.entries[1];
        let (s, e) = (four.speedup.unwrap(), four.efficiency.unwrap());
        assert!((e - s / 4.0).abs() < 1e-12, "efficiency = speedup / pes");
    }

    #[test]
    fn no_baseline_means_no_speedup() {
        let artifact = compile(corpus::HELLO_PARALLEL).unwrap();
        let report = SweepSpec::over(base()).pes([2, 4]).run(&artifact);
        assert!(report.all_ok());
        assert!(report.entries.iter().all(|e| e.speedup.is_none()));
    }

    #[test]
    fn failing_config_does_not_abort_sweep() {
        let artifact =
            compile("HAI 1.2\nVISIBLE QUOSHUNT OF 1 AN DIFF OF ME AN 1\nKTHXBYE").unwrap();
        // 1 PE: ME-1 = -1, fine. 2 PEs: PE 1 divides by zero.
        let spec = SweepSpec::over(base().timeout(Duration::from_secs(5))).pes([1, 2, 1]).jobs(2);
        let report = spec.run(&artifact);
        assert!(report.entries[0].result.is_ok());
        assert!(matches!(report.entries[1].result, Err(LolError::Runtime(_))));
        assert!(report.entries[2].result.is_ok());
        assert_eq!(report.ok_count(), 2);
        assert!(!report.all_ok());
        // The failed entry still renders in table and JSON.
        assert!(report.speedup_table().contains("FAILED"));
        assert!(report.to_json().contains("\"ok\": false"));
    }

    #[test]
    fn parallel_and_serial_sweeps_agree_exactly() {
        let artifact = compile("HAI 1.2\nVISIBLE SUM OF WHATEVR AN ME\nKTHXBYE").unwrap();
        let spec = SweepSpec::over(base()).pes([1, 2, 3]).seeds([1, 2]);
        let serial = spec.clone().jobs(1).run(&artifact);
        let parallel = spec.jobs(4).run(&artifact);
        assert_eq!(serial.entries.len(), parallel.entries.len());
        for (a, b) in serial.entries.iter().zip(&parallel.entries) {
            assert_eq!(a.config.n_pes, b.config.n_pes);
            assert_eq!(a.config.seed, b.config.seed);
            assert_eq!(a.result.as_ref().unwrap().outputs, b.result.as_ref().unwrap().outputs);
        }
        assert_eq!(serial.to_json_stable(), parallel.to_json_stable());
    }

    #[test]
    fn invalid_config_is_reported_per_entry() {
        let artifact = compile(corpus::HELLO_PARALLEL).unwrap();
        let bad = LatencyModel::Mesh2D { width: 0, base_ns: 1, hop_ns: 1 };
        let report = SweepSpec::over(base()).latencies([LatencyModel::Off, bad]).run(&artifact);
        assert!(report.entries[0].result.is_ok());
        match &report.entries[1].result {
            Err(LolError::Config(msg)) => assert!(msg.contains("RUN0120"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn spec_string_round_trip() {
        let spec =
            SweepSpec::parse("pes=1..4;seeds=3;latency=off,mesh:4;backend=both", base()).unwrap();
        let configs = spec.configs();
        // 2 backends x 2 latencies x 3 seeds x 4 PE counts.
        assert_eq!(configs.len(), 48);
        assert_eq!(configs[0].backend, Backend::Interp);
        assert_eq!(configs[0].n_pes, 1);
        assert_eq!(configs[3].n_pes, 4);
        // seeds derive from the base seed.
        assert_eq!(configs[0].seed, base().seed);
        assert_eq!(configs[4].seed, base().seed + 1);
        assert_eq!(configs[47].backend, Backend::Vm);
        assert_eq!(configs[47].latency, LatencyModel::Mesh2D { width: 4, base_ns: 50, hop_ns: 11 });
    }

    #[test]
    fn spec_string_rejects_junk() {
        for bad in [
            "pes=0..2", // zero PEs fails validation
            "pes=two",
            "wat=1",
            "latency=mesh:0", // zero-width mesh rejected at parse
            "backend=fortran",
            "pes", // no '='
            "seeds=",
            "pes=4..1",                                           // backwards range
            "seeds=0",                                            // zero seeds would silently no-op
            "pes=1..4000000000", // absurd range must fail fast, not OOM
            "seeds=99999999",    // absurd seed count likewise
            "pes=1..200;seeds=600;latency=off,flat;backend=both", // product over cap
        ] {
            assert!(SweepSpec::parse(bad, base()).is_err(), "{bad} should be rejected");
        }
        // Explicit seed lists and ranges still work.
        let spec = SweepSpec::parse("seeds=7,9;jobs=2", base()).unwrap();
        assert_eq!(spec.configs().iter().map(|c| c.seed).collect::<Vec<_>>(), vec![7, 9]);
        assert_eq!(spec.jobs_requested(), 2);
    }

    #[test]
    fn json_shapes_are_wellformed_enough() {
        let artifact = compile(corpus::HELLO_PARALLEL).unwrap();
        let report = SweepSpec::over(base()).pes([1, 2]).run(&artifact);
        let full = report.to_json();
        assert!(full.contains("\"total_wall_ns\""));
        assert!(full.contains("\"speedup\""));
        assert!(full.contains("\"output_hash\""));
        let stable = report.to_json_stable();
        assert!(!stable.contains("wall_ns"));
        assert!(!stable.contains("speedup"));
        assert!(!stable.contains("\"jobs\""));
        assert!(stable.contains("\"output_hash\""));
        // Balanced braces/brackets (cheap well-formedness check).
        for json in [&full, &stable] {
            assert_eq!(json.matches('{').count(), json.matches('}').count());
            assert_eq!(json.matches('[').count(), json.matches(']').count());
        }
    }

    #[test]
    fn output_hash_distinguishes_output_boundaries() {
        let artifact = compile(corpus::HELLO_PARALLEL).unwrap();
        let r1 = SweepSpec::over(base()).pes([2]).run(&artifact);
        let r2 = SweepSpec::over(base()).pes([3]).run(&artifact);
        assert_ne!(r1.entries[0].output_hash(), r2.entries[0].output_hash());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn vs_interp_ratios_cover_matching_configs_only() {
        let artifact = compile(corpus::HELLO_PARALLEL).unwrap();
        let report = SweepSpec::over(base())
            .pes([1, 2])
            .backends([Backend::Interp, Backend::Vm])
            .run(&artifact);
        assert!(report.all_ok());
        // interp entries compare against themselves: ratio ≈ 1.
        for e in &report.entries[..2] {
            let r = e.vs_interp.expect("interp has a matching interp entry");
            assert!((r - 1.0).abs() < 1e-9, "interp vs itself should be 1.0, got {r}");
        }
        // vm entries carry vm-over-interp at the same PE count.
        for e in &report.entries[2..] {
            assert_eq!(e.config.backend, Backend::Vm);
            assert!(e.vs_interp.unwrap() > 0.0);
        }
        // A vm-only sweep has no interp baseline: no ratio.
        let vm_only = SweepSpec::over(base()).pes([1, 2]).backends([Backend::Vm]).run(&artifact);
        assert!(vm_only.entries.iter().all(|e| e.vs_interp.is_none()));
        // The ratio appears in timing JSON and the table header, never
        // in the byte-stable JSON.
        assert!(report.to_json().contains("\"vs_interp\""));
        assert!(report.speedup_table().contains("x-interp"));
        assert!(!report.to_json_stable().contains("vs_interp"));
    }

    #[test]
    fn thread_budget_serializes_wide_jobs_but_keeps_results_exact() {
        let artifact = compile("HAI 1.2\nVISIBLE SUM OF WHATEVR AN ME\nKTHXBYE").unwrap();
        let spec = SweepSpec::over(base()).pes([1, 2, 4]).seeds([1, 2]).jobs(4);
        // Budget of 1 PE-thread: every job runs alone, whatever the
        // worker count says.
        let tight = spec.clone().threads(1).run(&artifact);
        let loose = spec.threads(64).run(&artifact);
        assert!(tight.all_ok() && loose.all_ok());
        assert_eq!(tight.to_json_stable(), loose.to_json_stable());
        assert_eq!(SweepSpec::parse("pes=1,2;threads=3", base()).unwrap().threads_requested(), 3);
        assert!(SweepSpec::parse("threads=lots", base()).is_err());
    }

    #[test]
    fn sim_configs_weigh_their_worker_count_not_their_pe_count() {
        let budget = 8;
        // Threaded backends: one OS thread per PE, capped at the
        // budget (an over-wide job runs alone).
        assert_eq!(config_weight(&base().pes(6), budget), 6);
        assert_eq!(config_weight(&base().pes(65_536).backend(Backend::Vm), budget), 8);
        // Sim backend: weight is the scheduler's worker count, not the
        // PE count — a mega-scale sim on one worker costs one thread.
        assert_eq!(config_weight(&base().pes(65_536).backend(Backend::Sim).sim_jobs(1), budget), 1);
        assert_eq!(config_weight(&base().pes(65_536).backend(Backend::Sim).sim_jobs(3), budget), 3);
        // Small sims auto-resolve to the sequential scheduler.
        assert_eq!(config_weight(&base().pes(16).backend(Backend::Sim), budget), 1);
        // Auto on a big sim uses the host's parallelism, still capped.
        let auto = config_weight(&base().pes(65_536).backend(Backend::Sim), budget);
        let planned = lol_sim::planned_jobs(&base().pes(65_536).backend(Backend::Sim).shmem());
        assert_eq!(auto, planned.clamp(1, budget));
    }

    /// Regression for the thread-budget weight: before sim configs
    /// weighed their worker count, any sim job with `n_pes >= budget`
    /// claimed the whole budget and the sweep serialized. With the
    /// fix, a `threads=8` sweep keeps several one-worker sim configs
    /// in flight at once. The budget is still held during `on_entry`,
    /// so overlapping callbacks prove overlapping budget claims; each
    /// callback waits (bounded) until it sees a concurrent peer.
    #[test]
    fn threads_8_sweep_runs_sim_configs_concurrently() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let artifact = compile(corpus::HELLO_PARALLEL).unwrap();
        let spec = SweepSpec::over(base().backend(Backend::Sim).sim_jobs(1))
            .pes([64, 65, 66, 67, 68, 69, 70, 71])
            .jobs(8)
            .threads(8);
        let current = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let report = spec.run_with(&artifact, |_, cfg, result| {
            assert!(result.is_ok(), "{cfg:?}");
            let now = current.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            let t0 = Instant::now();
            while peak.load(Ordering::SeqCst) < 2 && t0.elapsed() < Duration::from_secs(5) {
                std::thread::sleep(Duration::from_millis(2));
            }
            current.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(report.all_ok(), "{}", report.speedup_table());
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "a threads=8 sweep must keep one-worker sim configs concurrent"
        );
    }

    #[test]
    fn sim_jobs_clause_sets_the_base_config() {
        let spec = SweepSpec::parse("pes=1,2;backend=sim;sim-jobs=4", base()).unwrap();
        assert!(spec.configs().iter().all(|c| c.sim_jobs == 4));
        assert_eq!(SweepSpec::parse("sim_jobs=2", base()).unwrap().configs()[0].sim_jobs, 2);
        assert!(SweepSpec::parse("sim-jobs=many", base()).is_err());
        // Not part of the config identity: two configs differing only
        // in sim_jobs share a resume key, and the JSONL record never
        // mentions the knob.
        let c = spec.configs()[0].clone();
        assert_eq!(config_key(&c), config_key(&c.clone().sim_jobs(9)));
        let record = jsonl_record(0, &c, &Err(LolError::Skipped("x".into())));
        assert!(!record.contains("sim_jobs"));
    }

    #[test]
    fn run_with_streams_every_entry_exactly_once() {
        let artifact = compile(corpus::HELLO_PARALLEL).unwrap();
        let spec = SweepSpec::over(base()).pes([1, 2, 3, 4]).jobs(4);
        let seen = Mutex::new(vec![0usize; 4]);
        let report = spec.run_with(&artifact, |i, cfg, result| {
            assert_eq!(cfg.n_pes, i + 1);
            assert!(result.is_ok());
            seen.lock().unwrap()[i] += 1;
        });
        assert_eq!(*seen.lock().unwrap(), vec![1, 1, 1, 1]);
        assert!(report.all_ok());
    }

    #[test]
    fn jsonl_records_are_single_line_and_carry_outcomes() {
        let artifact =
            compile("HAI 1.2\nVISIBLE QUOSHUNT OF 1 AN DIFF OF ME AN 1\nKTHXBYE").unwrap();
        let spec = SweepSpec::over(base().timeout(Duration::from_secs(5))).pes([1, 2]);
        let lines = Mutex::new(Vec::new());
        spec.run_with(&artifact, |i, cfg, result| {
            lines.lock().unwrap().push(jsonl_record(i, cfg, result));
        });
        let mut lines = lines.into_inner().unwrap();
        lines.sort(); // completion order is racy; index is in the record
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(!line.contains('\n'), "JSONL records must be single-line");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
        assert!(lines[0].contains("\"ok\": true"));
        assert!(lines[0].contains("\"output_hash\""));
        assert!(lines[1].contains("\"ok\": false"));
        assert!(lines[1].contains("RUN0001"));
    }

    #[test]
    fn barrier_and_lock_axes_round_trip_through_the_spec_string() {
        let spec =
            SweepSpec::parse("pes=1,2;barrier=central,dissem;lock=cas,ticket", base()).unwrap();
        let configs = spec.configs();
        // 2 barriers × 2 locks × 2 PE counts, barrier outermost of the
        // two new axes, PE count innermost.
        assert_eq!(configs.len(), 8);
        assert_eq!(
            configs.iter().map(|c| (c.barrier, c.lock, c.n_pes)).collect::<Vec<_>>(),
            vec![
                (BarrierKind::Centralized, LockKind::SpinCas, 1),
                (BarrierKind::Centralized, LockKind::SpinCas, 2),
                (BarrierKind::Centralized, LockKind::Ticket, 1),
                (BarrierKind::Centralized, LockKind::Ticket, 2),
                (BarrierKind::Dissemination, LockKind::SpinCas, 1),
                (BarrierKind::Dissemination, LockKind::SpinCas, 2),
                (BarrierKind::Dissemination, LockKind::Ticket, 1),
                (BarrierKind::Dissemination, LockKind::Ticket, 2),
            ]
        );
        // Long-form aliases parse to the same values.
        let alias = SweepSpec::parse("barrier=centralized,dissemination;lock=spincas", base())
            .unwrap()
            .configs();
        assert_eq!(alias[0].barrier, BarrierKind::Centralized);
        assert_eq!(alias[1].barrier, BarrierKind::Dissemination);
        assert_eq!(alias[0].lock, LockKind::SpinCas);
        // Bad values are rejected with the axis named.
        for bad in ["barrier=tree", "lock=mcs", "barrier=", "lock=cas,"] {
            let err = SweepSpec::parse(bad, base()).unwrap_err();
            assert!(err.contains("O NOES!"), "{bad}: {err}");
        }
    }

    #[test]
    fn barrier_and_lock_groups_get_their_own_scaling_baselines() {
        let artifact = compile(corpus::HELLO_PARALLEL).unwrap();
        let report = SweepSpec::over(base())
            .pes([1, 2])
            .barriers(BarrierKind::ALL)
            .locks(LockKind::ALL)
            .run(&artifact);
        assert!(report.all_ok(), "{}", report.speedup_table());
        assert_eq!(report.entries.len(), 8);
        // Every (barrier, lock) group has its own 1-PE baseline, so
        // every entry gets a speedup column.
        for e in &report.entries {
            assert!(
                e.speedup.is_some(),
                "missing baseline for barrier={} lock={}",
                e.config.barrier,
                e.config.lock
            );
        }
        // The new axes appear in both serializations and the table.
        assert!(report.to_json().contains("\"barrier\": \"dissem\""));
        assert!(report.to_json_stable().contains("\"lock\": \"ticket\""));
        let table = report.speedup_table();
        assert!(table.contains("barrier") && table.contains("dissem"), "{table}");
        let record = jsonl_record(0, &report.entries[0].config, &report.entries[0].result);
        assert!(
            record.contains("\"barrier\": \"central\"") && record.contains("\"lock\": \"cas\"")
        );
    }

    #[test]
    fn backend_clause_accepts_c_and_all() {
        let spec = SweepSpec::parse("pes=1;backend=interp,vm,c", base()).unwrap();
        assert_eq!(
            spec.configs().iter().map(|c| c.backend).collect::<Vec<_>>(),
            vec![Backend::Interp, Backend::Vm, Backend::C]
        );
        let all = SweepSpec::parse("backend=all", base()).unwrap();
        assert_eq!(all.backends_requested(), &Backend::ALL);
        assert!(SweepSpec::parse("backend=fortran", base()).is_err());
    }

    #[test]
    fn pes_clause_takes_suffixes_and_power_ranges() {
        // k/m suffixes: 1k = 1024, 1m = 1048576 (binary, like heap
        // sizes — a 64k sweep is a 65,536-PE sweep).
        let spec = SweepSpec::parse("pes=4,1k,64K,1m", base()).unwrap();
        assert_eq!(
            spec.configs().iter().map(|c| c.n_pes).collect::<Vec<_>>(),
            vec![4, 1024, 65_536, 1 << 20]
        );
        // Powers-of-two ranges expand the exponents.
        let spec = SweepSpec::parse("pes=2^0..2^6", base()).unwrap();
        assert_eq!(
            spec.configs().iter().map(|c| c.n_pes).collect::<Vec<_>>(),
            vec![1, 2, 4, 8, 16, 32, 64]
        );
        // The headline sweep parses (21 configs, well under the cap).
        assert_eq!(SweepSpec::parse("pes=2^0..2^20", base()).unwrap().configs().len(), 21);
        // Suffixed range endpoints work too.
        assert_eq!(SweepSpec::parse("pes=1k..1025", base()).unwrap().configs().len(), 2);
        // Overflow and junk are parse errors, not wraps or panics.
        for bad in [
            "pes=99999999999999999999m", // multiplication overflow
            "pes=2^64",                  // shift overflow
            "pes=2^1..2^999",
            "pes=2^4..16", // mixed range notation
            "pes=16..2^6", // mixed the other way
            "pes=2^a..2^b",
            "pes=4q",
            "pes=2^3..2^1", // backwards
        ] {
            let err = SweepSpec::parse(bad, base()).unwrap_err();
            assert!(err.contains("O NOES!"), "{bad}: {err}");
        }
    }

    #[test]
    fn trace_clause_sets_a_global_budget() {
        let spec = SweepSpec::parse("pes=4;trace=64k@2", base()).unwrap();
        let cfg = &spec.configs()[0];
        assert!(cfg.trace);
        assert_eq!(cfg.trace_spec, Some(crate::TraceSpec { cap: 65_536, stride: 2 }));
        // The substrate config divides the budget among sampled PEs.
        let sh = cfg.shmem();
        assert_eq!(sh.trace_capacity, 65_536 / 2);
        assert!(sh.traces_pe(0) && !sh.traces_pe(1) && sh.traces_pe(2));
        assert!(SweepSpec::parse("trace=0", base()).is_err());
        assert!(SweepSpec::parse("trace=4k@x", base()).is_err());
    }

    #[test]
    fn mega_scale_rows_render_scientifically_and_stably() {
        // A hand-assembled report (no actual 1M-PE run in a unit
        // test): one small row, one mega row, sim backend, virtual
        // clock — pinning both the table formatting and the
        // byte-stable JSON.
        let mk = |pes: usize, vns: u64| {
            let config = base().pes(pes).backend(Backend::Sim).clock(ClockMode::Virtual);
            let report = RunReport {
                backend: Backend::Sim,
                outputs: vec![String::from("HAI\n"); 2],
                stats: vec![crate::CommStats::default(); 2],
                wall: Duration::from_nanos(vns),
                host_wall: Duration::from_micros(3),
                virtual_wall: Some(Duration::from_nanos(vns)),
                trace: None,
                phases: crate::PhaseTimings::default(),
                sim: None,
                profile: None,
                config: config.clone(),
            };
            SweepEntry {
                config,
                result: Ok(report),
                speedup: None,
                efficiency: None,
                vs_interp: None,
            }
        };
        let report = SweepReport {
            entries: vec![mk(64, 1_500), mk(65_536, 23_000)],
            jobs: 1,
            total_wall: Duration::from_millis(1),
        };
        let table = report.speedup_table();
        assert!(table.contains("   64"), "small counts stay exact:\n{table}");
        assert!(table.contains("6.6e4"), "mega counts go scientific:\n{table}");
        assert!(!table.contains("65536"), "no raw mega count in the table:\n{table}");
        // The stable JSON keeps exact numbers and deterministic
        // virtual walls — byte-for-byte reproducible.
        let expected = "{\n  \"configs\": 2,\n  \"ok\": 2,\n  \"entries\": [\n    \
            {\"index\": 0, \"backend\": \"sim\", \"pes\": 64, \"seed\": 206041101, \
            \"latency\": \"off\", \"barrier\": \"central\", \"lock\": \"cas\", \
            \"clock\": \"virtual\", \"ok\": true, \"virtual_wall_ns\": 1500, \
            \"output_hash\": \"7cfcfa1d8ca9ad45\", \"stats\": {\"local_gets\": 0, \
            \"remote_gets\": 0, \"local_puts\": 0, \"remote_puts\": 0, \
            \"block_get_words\": 0, \"block_put_words\": 0, \"amos\": 0, \
            \"barriers_per_pe\": 0, \"lock_acquires\": 0, \"remote_fraction\": 0.0000}},\n    \
            {\"index\": 1, \"backend\": \"sim\", \"pes\": 65536, \"seed\": 206041101, \
            \"latency\": \"off\", \"barrier\": \"central\", \"lock\": \"cas\", \
            \"clock\": \"virtual\", \"ok\": true, \"virtual_wall_ns\": 23000, \
            \"output_hash\": \"7cfcfa1d8ca9ad45\", \"stats\": {\"local_gets\": 0, \
            \"remote_gets\": 0, \"local_puts\": 0, \"remote_puts\": 0, \
            \"block_get_words\": 0, \"block_put_words\": 0, \"amos\": 0, \
            \"barriers_per_pe\": 0, \"lock_acquires\": 0, \"remote_fraction\": 0.0000}}\n  ]\n}\n";
        assert_eq!(report.to_json_stable(), expected);
    }

    #[test]
    fn sim_backend_sweeps_alongside_the_others() {
        let artifact = compile(corpus::RING_EXAMPLE).unwrap();
        let report = SweepSpec::over(base().clock(ClockMode::Virtual))
            .pes([1, 2, 4])
            .backends([Backend::Interp, Backend::Vm, Backend::Sim])
            .run(&artifact);
        assert!(report.all_ok(), "{}", report.speedup_table());
        // Same outputs and (deterministic) virtual walls per PE count,
        // whichever engine ran.
        for i in 0..3 {
            let interp = report.entries[i].result.as_ref().unwrap();
            let vm = report.entries[3 + i].result.as_ref().unwrap();
            let sim = report.entries[6 + i].result.as_ref().unwrap();
            assert_eq!(interp.outputs, sim.outputs);
            assert_eq!(vm.outputs, sim.outputs);
            assert_eq!(interp.virtual_wall, sim.virtual_wall);
            assert_eq!(vm.virtual_wall, sim.virtual_wall);
        }
    }

    #[test]
    fn unsupported_entries_are_not_hard_failures() {
        let artifact = compile(corpus::HELLO_PARALLEL).unwrap();
        // The C stub caps PE threads at 256, so this sweep mixes ok
        // entries (interp runs 257 oversubscribed threads fine) with
        // unsupported ones (c refuses past the cap) — whatever
        // compilers the machine has.
        let report = SweepSpec::over(base())
            .pes([257])
            .backends([Backend::Interp, Backend::C])
            .run(&artifact);
        assert_eq!(report.ok_count(), 1);
        assert_eq!(report.unsupported_count(), 1);
        assert_eq!(report.hard_failure_count(), 0);
        assert!(!report.all_ok());
        assert!(report.speedup_table().contains("UNSUPPORTED"));
        assert!(report.to_json().contains("\"unsupported\": true"));
    }
}
