//! Parallel sweep orchestration: config matrices, a bounded worker
//! pool, and aggregated scaling reports.
//!
//! The paper's central evidence is *scaling behaviour* — the same SPMD
//! programs swept across PE counts on a 16-core Epiphany-III mesh and a
//! Cray XC40. [`SweepSpec`] makes that the default workflow instead of
//! a hand-rolled loop: describe a cartesian product of PE counts ×
//! seeds × latency models × backends, and [`SweepSpec::run`] dispatches
//! the independent jobs onto a bounded pool of scoped OS threads,
//! reusing one [`Compiled`] artifact throughout. Results come back in
//! config order regardless of completion order, so a sweep is
//! reproducible no matter how many workers ran it.
//!
//! ```
//! use lolcode::{compile, SweepSpec};
//!
//! let artifact = compile("HAI 1.2\nVISIBLE \"HAI \" ME\nKTHXBYE").unwrap();
//! let report = SweepSpec::new().pes([1, 2, 4]).seeds([7, 8]).run(&artifact);
//! assert_eq!(report.entries.len(), 6);
//! println!("{}", report.speedup_table());
//! ```
//!
//! [`SweepReport`] aggregates the per-config [`RunReport`]s into the
//! derived metrics a scaling figure needs — speedup vs. the 1-PE
//! baseline of the same (backend, latency, seed) group, parallel
//! efficiency, and job-wide communication totals — and serializes to
//! JSON without any external dependency ([`SweepReport::to_json`]).

use crate::{engine_for, Backend, Compiled, LatencyModel, LolError, RunConfig, RunReport};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// SweepSpec
// ---------------------------------------------------------------------

/// Hard cap on one sweep's config count — a typo'd spec
/// (`pes=1..4000000000`) must fail fast, not allocate for hours.
pub const MAX_CONFIGS: usize = 100_000;

/// Hard cap on the values one spec-string axis clause may expand to.
const MAX_AXIS_VALUES: u64 = 65_536;

/// A cartesian product of run configurations plus a worker budget.
///
/// Axes left unset fall back to the base config's single value, so a
/// spec is never empty: `SweepSpec::new()` describes exactly one run.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    base: RunConfig,
    pes: Vec<usize>,
    seeds: Vec<u64>,
    latencies: Vec<LatencyModel>,
    backends: Vec<Backend>,
    jobs: usize,
}

impl Default for SweepSpec {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepSpec {
    /// An empty spec over the default [`RunConfig`]: one config, auto
    /// worker count.
    pub fn new() -> Self {
        Self::over(RunConfig::new(1))
    }

    /// An empty spec whose unset axes inherit from `base` (timeout,
    /// input, heap size, barrier/lock algorithms always do).
    pub fn over(base: RunConfig) -> Self {
        SweepSpec {
            base,
            pes: Vec::new(),
            seeds: Vec::new(),
            latencies: Vec::new(),
            backends: Vec::new(),
            jobs: 0,
        }
    }

    /// Sweep these PE counts (innermost axis).
    pub fn pes(mut self, pes: impl IntoIterator<Item = usize>) -> Self {
        self.pes = pes.into_iter().collect();
        self
    }

    /// Sweep these RNG seeds.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sweep `count` seeds derived from the base config's seed
    /// (`base.seed + 0 .. base.seed + count`).
    pub fn seed_count(mut self, count: u64) -> Self {
        let base = self.base.seed;
        self.seeds = (0..count).map(|i| base.wrapping_add(i)).collect();
        self
    }

    /// Sweep these latency models.
    pub fn latencies(mut self, models: impl IntoIterator<Item = LatencyModel>) -> Self {
        self.latencies = models.into_iter().collect();
        self
    }

    /// Sweep these backends (outermost axis).
    pub fn backends(mut self, backends: impl IntoIterator<Item = Backend>) -> Self {
        self.backends = backends.into_iter().collect();
        self
    }

    /// Cap the worker pool at `jobs` concurrent SPMD jobs. `0` (the
    /// default) means `min(available cores, number of configs)`.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// The worker cap (`0` = auto).
    pub fn jobs_requested(&self) -> usize {
        self.jobs
    }

    /// The explicitly-set backend axis (empty = inherit the base
    /// config's backend). Lets callers distinguish "unset" from "set"
    /// before layering their own default on top.
    pub fn backends_requested(&self) -> &[Backend] {
        &self.backends
    }

    /// The worker count a sweep of `n_configs` would actually use.
    pub fn effective_jobs(&self, n_configs: usize) -> usize {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let cap = if self.jobs > 0 { self.jobs } else { cores };
        cap.min(n_configs).max(1)
    }

    /// Materialize the cartesian product, in deterministic order:
    /// backends × latencies × seeds × PE counts (PE count innermost, so
    /// consecutive entries form a scaling curve).
    pub fn configs(&self) -> Vec<RunConfig> {
        fn one<T: Clone>(v: &[T], fallback: T) -> Vec<T> {
            if v.is_empty() {
                vec![fallback]
            } else {
                v.to_vec()
            }
        }
        let backends = one(&self.backends, self.base.backend);
        let latencies = one(&self.latencies, self.base.latency);
        let seeds = one(&self.seeds, self.base.seed);
        let pes = one(&self.pes, self.base.n_pes);
        let mut out =
            Vec::with_capacity(backends.len() * latencies.len() * seeds.len() * pes.len());
        for &backend in &backends {
            for &latency in &latencies {
                for &seed in &seeds {
                    for &n_pes in &pes {
                        out.push(
                            self.base
                                .clone()
                                .backend(backend)
                                .latency(latency)
                                .seed(seed)
                                .pes(n_pes),
                        );
                    }
                }
            }
        }
        out
    }

    /// Check the spec axis-by-axis (bad latency models, zero PE
    /// counts, absurd matrix sizes) without materializing the product.
    pub fn validate(&self) -> Result<(), LolError> {
        if let Some(&n) = self.pes.iter().find(|&&n| n == 0) {
            return Err(LolError::Config(format!(
                "O NOES! [RUN0121] A JOB NEEDS AT LEAST ONE PE, NOT {n}"
            )));
        }
        for m in &self.latencies {
            m.validate().map_err(LolError::Config)?;
        }
        self.base.validate()?;
        let total = self
            .pes
            .len()
            .max(1)
            .saturating_mul(self.seeds.len().max(1))
            .saturating_mul(self.latencies.len().max(1))
            .saturating_mul(self.backends.len().max(1));
        if total > MAX_CONFIGS {
            return Err(LolError::Config(format!(
                "O NOES! DIS SWEEP HAZ {total} CONFIGS — MAX IZ {MAX_CONFIGS}"
            )));
        }
        Ok(())
    }

    /// Run the whole product against one artifact on a bounded worker
    /// pool and aggregate the results.
    ///
    /// Jobs are claimed from a shared queue by `effective_jobs` scoped
    /// OS threads; each result lands in its config-order slot, so the
    /// report's outputs and stats are identical whether one worker ran
    /// everything serially or the whole pool raced. Wall times are
    /// *not*: concurrent jobs contend for cores, biasing per-config
    /// walls (and the speedup/efficiency columns derived from them)
    /// upward — use [`SweepSpec::jobs`]`(1)` when the timing columns
    /// are the result. A failing config records its error and does not
    /// abort the rest.
    pub fn run(&self, artifact: &Compiled) -> SweepReport {
        let configs = self.configs();
        let n = configs.len();
        let workers = self.effective_jobs(n);
        let t0 = Instant::now();
        let mut slots: Vec<Mutex<Option<Result<RunReport, LolError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();

        if workers <= 1 {
            for (cfg, slot) in configs.iter().zip(&mut slots) {
                *slot.get_mut().unwrap() = Some(engine_for(cfg.backend).run(artifact, cfg));
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let result = engine_for(configs[i].backend).run(artifact, &configs[i]);
                        *slots[i].lock().unwrap() = Some(result);
                    });
                }
            });
        }

        let results = slots
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("every sweep slot filled"))
            .collect();
        SweepReport::assemble(configs, results, workers, t0.elapsed())
    }

    /// Parse a `lolrun --sweep` spec string on top of `base`.
    ///
    /// Grammar: semicolon-separated `key=value` clauses —
    ///
    /// * `pes=1..16` or `pes=1,2,4,8` — PE counts (`a..b` inclusive)
    /// * `seeds=3` — 3 seeds derived from the base seed;
    ///   `seeds=7,9` or `seeds=0..2` — explicit seed values
    /// * `latency=off,mesh:4,torus:4x4,flat:1000` — latency models
    ///   (see [`LatencyModel::from_str`][std::str::FromStr])
    /// * `backend=interp|vm|both`
    /// * `jobs=4` — worker cap (`0` = auto)
    ///
    /// Example: `"pes=1..16;seeds=3;latency=off,mesh:4"`.
    pub fn parse(spec: &str, base: RunConfig) -> Result<SweepSpec, String> {
        let mut out = SweepSpec::over(base);
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("O NOES! SWEEP CLAUSE NEEDS key=value, GOT: {clause}"))?;
            match key.trim() {
                "pes" => out.pes = parse_int_list(value).map_err(|e| format!("pes: {e}"))?,
                "seeds" => {
                    let v = value.trim();
                    if !v.contains(',') && !v.contains("..") {
                        let count: u64 = v
                            .parse()
                            .map_err(|_| format!("O NOES! seeds WANTS A NUMBR, GOT: {v}"))?;
                        if count == 0 || count > MAX_AXIS_VALUES {
                            return Err(format!(
                                "O NOES! seeds WANTS 1..{MAX_AXIS_VALUES} SEEDS, NOT {count}"
                            ));
                        }
                        out = out.seed_count(count);
                    } else {
                        out.seeds = parse_int_list(value).map_err(|e| format!("seeds: {e}"))?;
                    }
                }
                "latency" => {
                    out.latencies = value
                        .split(',')
                        .map(|tok| tok.trim().parse::<LatencyModel>())
                        .collect::<Result<_, _>>()?;
                }
                "backend" | "backends" => {
                    let mut backends = Vec::new();
                    for tok in value.split(',') {
                        match tok.trim() {
                            "interp" => backends.push(Backend::Interp),
                            "vm" => backends.push(Backend::Vm),
                            "both" => backends.extend([Backend::Interp, Backend::Vm]),
                            other => {
                                return Err(format!(
                                    "O NOES! backend IZ interp, vm OR both, NOT {other}"
                                ))
                            }
                        }
                    }
                    out.backends = backends;
                }
                "jobs" => {
                    out.jobs = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("O NOES! jobs WANTS A NUMBR, GOT: {value}"))?;
                }
                other => return Err(format!("O NOES! I DUNNO DIS SWEEP AXIS: {other}")),
            }
        }
        out.validate().map_err(|e| e.to_string())?;
        Ok(out)
    }
}

/// Parse `1,2,4` / `1..8` / mixtures of both into a list, preserving
/// order. `a..b` is inclusive on both ends.
fn parse_int_list<T>(s: &str) -> Result<Vec<T>, String>
where
    T: std::str::FromStr + TryFrom<u64>,
{
    let mut out = Vec::new();
    for tok in s.split(',') {
        let tok = tok.trim();
        if let Some((lo, hi)) = tok.split_once("..") {
            let parse = |t: &str| {
                t.trim()
                    .parse::<u64>()
                    .map_err(|_| format!("O NOES! {t} IZ NOT A NUMBR IN RANGE {tok}"))
            };
            let (lo, hi) = (parse(lo)?, parse(hi)?);
            if lo > hi {
                return Err(format!("O NOES! BACKWARDS RANGE: {tok}"));
            }
            if hi - lo >= MAX_AXIS_VALUES {
                return Err(format!(
                    "O NOES! RANGE {tok} HAZ 2 MANY VALUES (MAX {MAX_AXIS_VALUES})"
                ));
            }
            for v in lo..=hi {
                out.push(T::try_from(v).map_err(|_| format!("O NOES! {v} IZ 2 BIG"))?);
            }
        } else {
            out.push(tok.parse().map_err(|_| format!("O NOES! {tok} IZ NOT A NUMBR"))?);
        }
    }
    if out.is_empty() {
        return Err("O NOES! EMPTY LIST".to_string());
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// SweepReport
// ---------------------------------------------------------------------

/// One config's slot in a sweep: the config, its outcome, and metrics
/// derived against the sweep's baselines.
#[derive(Clone, Debug)]
pub struct SweepEntry {
    /// The effective configuration (includes the backend).
    pub config: RunConfig,
    /// The run's outcome; failures don't abort the sweep.
    pub result: Result<RunReport, LolError>,
    /// Wall-time speedup vs. the 1-PE entry of the same
    /// (backend, latency, seed) group, when that baseline exists.
    ///
    /// Timing caveat: with more than one worker, concurrently-running
    /// jobs contend for cores, which *systematically* inflates walls
    /// (the 1-PE baseline most of all) — outputs and stats are exact
    /// at any worker count, but publication-grade speedup curves
    /// should come from a [`SweepSpec::jobs`]`(1)` sweep.
    pub speedup: Option<f64>,
    /// `speedup / n_pes` — parallel efficiency.
    pub efficiency: Option<f64>,
}

impl SweepEntry {
    /// FNV-1a hash over the per-PE outputs (stable fingerprint for
    /// machine-readable reports without embedding full outputs).
    pub fn output_hash(&self) -> Option<u64> {
        let report = self.result.as_ref().ok()?;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for out in &report.outputs {
            eat(out.as_bytes());
            eat(&[0x1E]); // record separator: "a","" != "","a"
        }
        Some(h)
    }
}

/// Aggregated result of a [`SweepSpec::run`]: entries in config order
/// plus derived scaling metrics.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// One entry per config, in [`SweepSpec::configs`] order.
    pub entries: Vec<SweepEntry>,
    /// Worker threads the scheduler actually used.
    pub jobs: usize,
    /// Wall-clock time of the whole sweep (launch to last join).
    pub total_wall: Duration,
}

impl SweepReport {
    fn assemble(
        configs: Vec<RunConfig>,
        results: Vec<Result<RunReport, LolError>>,
        jobs: usize,
        total_wall: Duration,
    ) -> Self {
        let mut entries: Vec<SweepEntry> = configs
            .into_iter()
            .zip(results)
            .map(|(config, result)| SweepEntry { config, result, speedup: None, efficiency: None })
            .collect();
        // Baselines: the 1-PE wall time of each (backend, latency,
        // seed) group.
        let key = |c: &RunConfig| (c.backend, c.latency.to_string(), c.seed);
        let baselines: Vec<((Backend, String, u64), Duration)> = entries
            .iter()
            .filter(|e| e.config.n_pes == 1)
            .filter_map(|e| e.result.as_ref().ok().map(|r| (key(&e.config), r.wall)))
            .collect();
        for e in &mut entries {
            let Ok(report) = &e.result else { continue };
            let k = key(&e.config);
            let Some((_, base)) = baselines.iter().find(|(bk, _)| *bk == k) else { continue };
            let wall = report.wall.as_secs_f64();
            if wall > 0.0 {
                let speedup = base.as_secs_f64() / wall;
                e.speedup = Some(speedup);
                e.efficiency = Some(speedup / e.config.n_pes as f64);
            }
        }
        SweepReport { entries, jobs, total_wall }
    }

    /// Number of configs that ran successfully.
    pub fn ok_count(&self) -> usize {
        self.entries.iter().filter(|e| e.result.is_ok()).count()
    }

    /// Did every config succeed?
    pub fn all_ok(&self) -> bool {
        self.ok_count() == self.entries.len()
    }

    /// Render a human-readable scaling table (one row per config).
    pub fn speedup_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<7} {:<16} {:>12} {:>4}  {:>10} {:>8} {:>5} {:>8}  outcome\n",
            "backend", "latency", "seed", "pes", "wall", "speedup", "eff", "remote%"
        ));
        for e in &self.entries {
            let c = &e.config;
            let opt = |v: Option<f64>, prec: usize| match v {
                Some(v) => format!("{v:.prec$}"),
                None => "-".to_string(),
            };
            match &e.result {
                Ok(r) => {
                    let total = r.total_stats();
                    out.push_str(&format!(
                        "{:<7} {:<16} {:>12} {:>4}  {:>10} {:>8} {:>5} {:>7.1}%  ok\n",
                        c.backend.to_string(),
                        c.latency.to_string(),
                        c.seed,
                        c.n_pes,
                        format!("{:.1?}", r.wall),
                        opt(e.speedup, 2),
                        opt(e.efficiency, 2),
                        100.0 * total.remote_fraction(),
                    ));
                }
                Err(err) => {
                    let first = err.to_string();
                    let first = first.lines().next().unwrap_or("").to_string();
                    out.push_str(&format!(
                        "{:<7} {:<16} {:>12} {:>4}  {:>10} {:>8} {:>5} {:>8}  FAILED: {}\n",
                        c.backend.to_string(),
                        c.latency.to_string(),
                        c.seed,
                        c.n_pes,
                        "-",
                        "-",
                        "-",
                        "-",
                        first,
                    ));
                }
            }
        }
        out.push_str(&format!(
            "{} configs, {} ok, {} workers, total wall {:.1?}\n",
            self.entries.len(),
            self.ok_count(),
            self.jobs,
            self.total_wall,
        ));
        out
    }

    /// Machine-readable JSON, including timing-derived fields
    /// (`wall_ns`, `speedup`, `efficiency`, worker count).
    pub fn to_json(&self) -> String {
        self.render_json(true)
    }

    /// JSON with every timing-dependent field omitted: byte-identical
    /// across repeated runs and worker counts for a deterministic
    /// program, so it can be diffed or content-hashed in CI.
    pub fn to_json_stable(&self) -> String {
        self.render_json(false)
    }

    fn render_json(&self, timing: bool) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"configs\": {},\n", self.entries.len()));
        out.push_str(&format!("  \"ok\": {},\n", self.ok_count()));
        if timing {
            out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
            out.push_str(&format!("  \"total_wall_ns\": {},\n", self.total_wall.as_nanos()));
        }
        out.push_str("  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let c = &e.config;
            out.push_str(&format!("\"index\": {i}, "));
            out.push_str(&format!("\"backend\": \"{}\", ", c.backend));
            out.push_str(&format!("\"pes\": {}, ", c.n_pes));
            out.push_str(&format!("\"seed\": {}, ", c.seed));
            out.push_str(&format!("\"latency\": \"{}\", ", c.latency));
            match &e.result {
                Ok(r) => {
                    out.push_str("\"ok\": true, ");
                    if timing {
                        out.push_str(&format!("\"wall_ns\": {}, ", r.wall.as_nanos()));
                        let opt = |v: Option<f64>| match v {
                            Some(v) => format!("{v:.4}"),
                            None => "null".to_string(),
                        };
                        out.push_str(&format!("\"speedup\": {}, ", opt(e.speedup)));
                        out.push_str(&format!("\"efficiency\": {}, ", opt(e.efficiency)));
                    }
                    out.push_str(&format!(
                        "\"output_hash\": \"{:016x}\", ",
                        e.output_hash().expect("ok entry hashes")
                    ));
                    let t = r.total_stats();
                    out.push_str(&format!(
                        "\"stats\": {{\"local_gets\": {}, \"remote_gets\": {}, \
                         \"local_puts\": {}, \"remote_puts\": {}, \
                         \"block_get_words\": {}, \"block_put_words\": {}, \
                         \"amos\": {}, \"barriers_per_pe\": {}, \
                         \"lock_acquires\": {}, \"remote_fraction\": {:.4}}}",
                        t.local_gets,
                        t.remote_gets,
                        t.local_puts,
                        t.remote_puts,
                        t.block_get_words,
                        t.block_put_words,
                        t.amos,
                        r.stats.first().map(|s| s.barriers).unwrap_or(0),
                        t.lock_acquires,
                        t.remote_fraction(),
                    ));
                }
                Err(err) => {
                    out.push_str("\"ok\": false, ");
                    out.push_str(&format!("\"error\": \"{}\"", json_escape(&err.to_string())));
                }
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, corpus};

    fn base() -> RunConfig {
        RunConfig::new(1).timeout(Duration::from_secs(30))
    }

    #[test]
    fn empty_spec_is_one_config() {
        let configs = SweepSpec::over(base()).configs();
        assert_eq!(configs.len(), 1);
        assert_eq!(configs[0].n_pes, 1);
    }

    #[test]
    fn cartesian_product_order_is_backend_latency_seed_pes() {
        let spec = SweepSpec::over(base())
            .pes([1, 2])
            .seeds([5, 6])
            .latencies([LatencyModel::Off, LatencyModel::xc40()])
            .backends([Backend::Interp, Backend::Vm]);
        let configs = spec.configs();
        assert_eq!(configs.len(), 16);
        // PE count is the innermost axis...
        assert_eq!(configs[0].n_pes, 1);
        assert_eq!(configs[1].n_pes, 2);
        // ...then seeds...
        assert_eq!((configs[0].seed, configs[2].seed), (5, 6));
        // ...then latency, then backend (outermost).
        assert_eq!(configs[4].latency, LatencyModel::xc40());
        assert_eq!(configs[8].backend, Backend::Vm);
    }

    #[test]
    fn run_returns_entries_in_config_order() {
        let artifact = compile(corpus::HELLO_PARALLEL).unwrap();
        let spec = SweepSpec::over(base()).pes([1, 2, 3, 4]).jobs(4);
        let report = spec.run(&artifact);
        assert!(report.all_ok());
        for (i, e) in report.entries.iter().enumerate() {
            assert_eq!(e.config.n_pes, i + 1);
            let r = e.result.as_ref().unwrap();
            assert_eq!(r.outputs.len(), i + 1);
            assert_eq!(r.output(0), format!("HAI ITZ 0 OF {}\n", i + 1));
        }
    }

    #[test]
    fn speedup_and_efficiency_derive_from_1pe_baseline() {
        let artifact = compile(corpus::HELLO_PARALLEL).unwrap();
        let report = SweepSpec::over(base()).pes([1, 4]).run(&artifact);
        let one = &report.entries[0];
        assert_eq!(one.speedup.map(|s| (s * 100.0).round()), Some(100.0), "baseline speedup is 1");
        assert_eq!(one.efficiency.map(|s| (s * 100.0).round()), Some(100.0));
        let four = &report.entries[1];
        let (s, e) = (four.speedup.unwrap(), four.efficiency.unwrap());
        assert!((e - s / 4.0).abs() < 1e-12, "efficiency = speedup / pes");
    }

    #[test]
    fn no_baseline_means_no_speedup() {
        let artifact = compile(corpus::HELLO_PARALLEL).unwrap();
        let report = SweepSpec::over(base()).pes([2, 4]).run(&artifact);
        assert!(report.all_ok());
        assert!(report.entries.iter().all(|e| e.speedup.is_none()));
    }

    #[test]
    fn failing_config_does_not_abort_sweep() {
        let artifact =
            compile("HAI 1.2\nVISIBLE QUOSHUNT OF 1 AN DIFF OF ME AN 1\nKTHXBYE").unwrap();
        // 1 PE: ME-1 = -1, fine. 2 PEs: PE 1 divides by zero.
        let spec = SweepSpec::over(base().timeout(Duration::from_secs(5))).pes([1, 2, 1]).jobs(2);
        let report = spec.run(&artifact);
        assert!(report.entries[0].result.is_ok());
        assert!(matches!(report.entries[1].result, Err(LolError::Runtime(_))));
        assert!(report.entries[2].result.is_ok());
        assert_eq!(report.ok_count(), 2);
        assert!(!report.all_ok());
        // The failed entry still renders in table and JSON.
        assert!(report.speedup_table().contains("FAILED"));
        assert!(report.to_json().contains("\"ok\": false"));
    }

    #[test]
    fn parallel_and_serial_sweeps_agree_exactly() {
        let artifact = compile("HAI 1.2\nVISIBLE SUM OF WHATEVR AN ME\nKTHXBYE").unwrap();
        let spec = SweepSpec::over(base()).pes([1, 2, 3]).seeds([1, 2]);
        let serial = spec.clone().jobs(1).run(&artifact);
        let parallel = spec.jobs(4).run(&artifact);
        assert_eq!(serial.entries.len(), parallel.entries.len());
        for (a, b) in serial.entries.iter().zip(&parallel.entries) {
            assert_eq!(a.config.n_pes, b.config.n_pes);
            assert_eq!(a.config.seed, b.config.seed);
            assert_eq!(a.result.as_ref().unwrap().outputs, b.result.as_ref().unwrap().outputs);
        }
        assert_eq!(serial.to_json_stable(), parallel.to_json_stable());
    }

    #[test]
    fn invalid_config_is_reported_per_entry() {
        let artifact = compile(corpus::HELLO_PARALLEL).unwrap();
        let bad = LatencyModel::Mesh2D { width: 0, base_ns: 1, hop_ns: 1 };
        let report = SweepSpec::over(base()).latencies([LatencyModel::Off, bad]).run(&artifact);
        assert!(report.entries[0].result.is_ok());
        match &report.entries[1].result {
            Err(LolError::Config(msg)) => assert!(msg.contains("RUN0120"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn spec_string_round_trip() {
        let spec =
            SweepSpec::parse("pes=1..4;seeds=3;latency=off,mesh:4;backend=both", base()).unwrap();
        let configs = spec.configs();
        // 2 backends x 2 latencies x 3 seeds x 4 PE counts.
        assert_eq!(configs.len(), 48);
        assert_eq!(configs[0].backend, Backend::Interp);
        assert_eq!(configs[0].n_pes, 1);
        assert_eq!(configs[3].n_pes, 4);
        // seeds derive from the base seed.
        assert_eq!(configs[0].seed, base().seed);
        assert_eq!(configs[4].seed, base().seed + 1);
        assert_eq!(configs[47].backend, Backend::Vm);
        assert_eq!(configs[47].latency, LatencyModel::Mesh2D { width: 4, base_ns: 50, hop_ns: 11 });
    }

    #[test]
    fn spec_string_rejects_junk() {
        for bad in [
            "pes=0..2", // zero PEs fails validation
            "pes=two",
            "wat=1",
            "latency=mesh:0", // zero-width mesh rejected at parse
            "backend=fortran",
            "pes", // no '='
            "seeds=",
            "pes=4..1",                                           // backwards range
            "seeds=0",                                            // zero seeds would silently no-op
            "pes=1..4000000000", // absurd range must fail fast, not OOM
            "seeds=99999999",    // absurd seed count likewise
            "pes=1..200;seeds=600;latency=off,flat;backend=both", // product over cap
        ] {
            assert!(SweepSpec::parse(bad, base()).is_err(), "{bad} should be rejected");
        }
        // Explicit seed lists and ranges still work.
        let spec = SweepSpec::parse("seeds=7,9;jobs=2", base()).unwrap();
        assert_eq!(spec.configs().iter().map(|c| c.seed).collect::<Vec<_>>(), vec![7, 9]);
        assert_eq!(spec.jobs_requested(), 2);
    }

    #[test]
    fn json_shapes_are_wellformed_enough() {
        let artifact = compile(corpus::HELLO_PARALLEL).unwrap();
        let report = SweepSpec::over(base()).pes([1, 2]).run(&artifact);
        let full = report.to_json();
        assert!(full.contains("\"total_wall_ns\""));
        assert!(full.contains("\"speedup\""));
        assert!(full.contains("\"output_hash\""));
        let stable = report.to_json_stable();
        assert!(!stable.contains("wall_ns"));
        assert!(!stable.contains("speedup"));
        assert!(!stable.contains("\"jobs\""));
        assert!(stable.contains("\"output_hash\""));
        // Balanced braces/brackets (cheap well-formedness check).
        for json in [&full, &stable] {
            assert_eq!(json.matches('{').count(), json.matches('}').count());
            assert_eq!(json.matches('[').count(), json.matches(']').count());
        }
    }

    #[test]
    fn output_hash_distinguishes_output_boundaries() {
        let artifact = compile(corpus::HELLO_PARALLEL).unwrap();
        let r1 = SweepSpec::over(base()).pes([2]).run(&artifact);
        let r2 = SweepSpec::over(base()).pes([3]).run(&artifact);
        assert_ne!(r1.entries[0].output_hash(), r2.entries[0].output_hash());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
