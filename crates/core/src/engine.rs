//! Compile-once / run-many execution: [`Compiled`] artifacts,
//! [`Engine`] backends and structured [`RunReport`]s.
//!
//! The front end (lex → parse → sema) runs **once**, producing a
//! [`Compiled`] artifact. Any number of executions — across PE counts,
//! seeds, latency models and backends — then reuse that artifact:
//!
//! ```
//! use lolcode::{compile, engine_for, Backend, RunConfig};
//!
//! let artifact = compile("HAI 1.2\nVISIBLE \"HAI \" ME\nKTHXBYE").unwrap();
//! let engine = engine_for(Backend::Interp);
//! let sweep: Vec<RunConfig> = (1..=4).map(RunConfig::new).collect();
//! for report in engine.run_many(&artifact, &sweep) {
//!     let report = report.unwrap();
//!     assert_eq!(report.outputs.len(), report.config.n_pes);
//! }
//! ```
//!
//! A [`RunReport`] carries everything a run produced: per-PE `VISIBLE`
//! output, per-PE communication statistics from the PGAS substrate,
//! wall-clock time, and the effective configuration — where the old
//! `run_source` API returned bare stdout strings and dropped the rest.

use crate::{Backend, LolError, RunConfig};
use lol_ast::{Program, SourceMap};
use lol_sema::Analysis;
use lol_shmem::{run_spmd, CommStats};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A program that has been parsed and semantically analyzed exactly
/// once, ready to run any number of times on any [`Engine`].
///
/// Backend lowering (the bytecode module for [`VmEngine`]) happens
/// lazily on first use and is cached, so an interpreter-only workload
/// never pays for it and a VM sweep pays exactly once.
pub struct Compiled {
    source: String,
    program: Program,
    analysis: Analysis,
    warnings: Vec<String>,
    vm_module: OnceLock<Result<lol_vm::Module, LolError>>,
}

impl Compiled {
    /// Lex, parse and analyze `src`. This is the only place in the
    /// pipeline that looks at source text.
    pub fn new(src: &str) -> Result<Self, LolError> {
        let (program, analysis, warnings) = crate::check(src)?;
        Ok(Compiled {
            source: src.to_string(),
            program,
            analysis,
            warnings,
            vm_module: OnceLock::new(),
        })
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The parsed program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The semantic analysis (shared layout, symbol info).
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// Non-fatal diagnostics from analysis, already rendered.
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// The bytecode module for the VM backend, lowered on first call
    /// and cached. Fails for interpreter-only constructs (`SRS`).
    pub fn vm_module(&self) -> Result<&lol_vm::Module, LolError> {
        self.vm_module
            .get_or_init(|| {
                lol_vm::compile(&self.program, &self.analysis)
                    .map_err(|d| LolError::Compile(d.render(&SourceMap::new(&self.source))))
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// Translate to C + OpenSHMEM (the paper's `lcc` output).
    pub fn emit_c(&self) -> Result<String, LolError> {
        lol_c_codegen::emit_c(&self.program, &self.analysis)
            .map_err(|d| LolError::Compile(d.render(&SourceMap::new(&self.source))))
    }
}

impl std::fmt::Debug for Compiled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Compiled")
            .field("source_bytes", &self.source.len())
            .field("warnings", &self.warnings.len())
            .field("vm_lowered", &self.vm_module.get().is_some())
            .finish()
    }
}

/// Everything one execution produced.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Which engine ran.
    pub backend: Backend,
    /// Per-PE `VISIBLE` output, in PE order.
    pub outputs: Vec<String>,
    /// Per-PE communication statistics, in PE order.
    pub stats: Vec<CommStats>,
    /// Wall-clock time of the SPMD job (launch to join).
    pub wall: Duration,
    /// The effective configuration the job ran with.
    pub config: RunConfig,
}

impl RunReport {
    /// Number of PEs that ran.
    pub fn n_pes(&self) -> usize {
        self.outputs.len()
    }

    /// One PE's captured output.
    pub fn output(&self, pe: usize) -> &str {
        &self.outputs[pe]
    }

    /// Job-wide communication totals (all PEs folded together).
    pub fn total_stats(&self) -> CommStats {
        self.stats.iter().sum()
    }
}

/// An execution backend that can run a [`Compiled`] artifact.
pub trait Engine: Sync {
    /// Which [`Backend`] this engine implements.
    fn backend(&self) -> Backend;

    /// Execute the artifact once under `cfg`.
    fn run(&self, artifact: &Compiled, cfg: &RunConfig) -> Result<RunReport, LolError>;

    /// Execute the artifact once per config — a sweep over PE counts,
    /// seeds, latency models, … — reusing the artifact throughout (the
    /// front end never reruns). Reports come back in config order; a
    /// failing config does not abort the rest of the sweep.
    fn run_many(
        &self,
        artifact: &Compiled,
        configs: &[RunConfig],
    ) -> Vec<Result<RunReport, LolError>> {
        configs.iter().map(|cfg| self.run(artifact, cfg)).collect()
    }
}

/// Assemble a report from per-PE `(output, stats)` pairs.
fn report(
    backend: Backend,
    per_pe: Vec<(String, CommStats)>,
    wall: Duration,
    config: RunConfig,
) -> RunReport {
    let (outputs, stats) = per_pe.into_iter().unzip();
    RunReport { backend, outputs, stats, wall, config }
}

/// The tree-walking interpreter backend (full language, including
/// `SRS`).
#[derive(Clone, Copy, Debug, Default)]
pub struct InterpEngine;

impl Engine for InterpEngine {
    fn backend(&self) -> Backend {
        Backend::Interp
    }

    fn run(&self, artifact: &Compiled, cfg: &RunConfig) -> Result<RunReport, LolError> {
        cfg.validate()?;
        let t0 = Instant::now();
        let per_pe = run_spmd(cfg.shmem(), |pe| {
            match lol_interp::run_on_pe(&artifact.program, &artifact.analysis, pe, &cfg.input) {
                Ok(out) => (out, pe.stats()),
                Err(e) => pe.fail(e.to_string()),
            }
        })
        .map_err(LolError::Runtime)?;
        Ok(report(Backend::Interp, per_pe, t0.elapsed(), cfg.clone()))
    }
}

/// The bytecode VM backend (compiled path; rejects `SRS`).
#[derive(Clone, Copy, Debug, Default)]
pub struct VmEngine;

impl Engine for VmEngine {
    fn backend(&self) -> Backend {
        Backend::Vm
    }

    fn run(&self, artifact: &Compiled, cfg: &RunConfig) -> Result<RunReport, LolError> {
        cfg.validate()?;
        let module = artifact.vm_module()?;
        let t0 = Instant::now();
        let per_pe = run_spmd(cfg.shmem(), |pe| match lol_vm::run_on_pe(module, pe, &cfg.input) {
            Ok(out) => (out, pe.stats()),
            Err(e) => pe.fail(e.to_string()),
        })
        .map_err(LolError::Runtime)?;
        Ok(report(Backend::Vm, per_pe, t0.elapsed(), cfg.clone()))
    }
}

/// The engine implementing `backend`.
pub fn engine_for(backend: Backend) -> &'static dyn Engine {
    match backend {
        Backend::Interp => &InterpEngine,
        Backend::Vm => &VmEngine,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;

    fn cfg(n: usize) -> RunConfig {
        RunConfig::new(n).timeout(Duration::from_secs(30))
    }

    #[test]
    fn compiled_artifact_runs_on_both_engines() {
        let artifact = Compiled::new(corpus::HELLO_PARALLEL).unwrap();
        let a = InterpEngine.run(&artifact, &cfg(3)).unwrap();
        let b = VmEngine.run(&artifact, &cfg(3)).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.backend, Backend::Interp);
        assert_eq!(b.backend, Backend::Vm);
    }

    #[test]
    fn report_carries_stats_wall_and_config() {
        let artifact = Compiled::new(corpus::BARRIER_EXAMPLE).unwrap();
        for engine in [engine_for(Backend::Interp), engine_for(Backend::Vm)] {
            let r = engine.run(&artifact, &cfg(4).seed(9)).unwrap();
            assert_eq!(r.n_pes(), 4);
            assert_eq!(r.stats.len(), 4);
            assert_eq!(r.config.n_pes, 4);
            assert_eq!(r.config.seed, 9);
            assert!(r.wall > Duration::ZERO);
            // The barrier example hugs twice plus the implicit
            // shmalloc barriers; every PE must agree on barrier count.
            for s in &r.stats {
                assert_eq!(s.barriers, r.stats[0].barriers, "{:?}", engine.backend());
                assert!(s.barriers >= 2);
            }
            // `TXT MAH BFF k, UR b R MAH a` does one remote put per PE.
            assert!(r.total_stats().remote_puts >= 4, "{:?}", engine.backend());
        }
    }

    #[test]
    fn run_many_sweeps_pe_counts_from_one_artifact() {
        let artifact = Compiled::new(corpus::HELLO_PARALLEL).unwrap();
        let sweep: Vec<RunConfig> = (1..=4).map(cfg).collect();
        let reports = InterpEngine.run_many(&artifact, &sweep);
        assert_eq!(reports.len(), 4);
        for (i, r) in reports.into_iter().enumerate() {
            let r = r.unwrap();
            assert_eq!(r.n_pes(), i + 1);
            assert_eq!(r.output(0), format!("HAI ITZ 0 OF {}\n", i + 1));
        }
    }

    #[test]
    fn run_many_continues_past_failing_configs() {
        let artifact =
            Compiled::new("HAI 1.2\nVISIBLE QUOSHUNT OF 1 AN DIFF OF ME AN 1\nKTHXBYE").unwrap();
        // 2 PEs: PE 1 divides by zero. 1 PE: fails on PE... ME=0 ->
        // ME-1 = -1, fine. Sweep mixes passing and failing configs.
        let sweep = vec![cfg(1), cfg(2).timeout(Duration::from_secs(5)), cfg(1)];
        let reports = VmEngine.run_many(&artifact, &sweep);
        assert!(reports[0].is_ok());
        assert!(matches!(reports[1], Err(LolError::Runtime(_))));
        assert!(reports[2].is_ok(), "sweep must continue after a failure");
    }

    #[test]
    fn vm_lowering_happens_once_and_is_shared() {
        let artifact = Compiled::new(corpus::RING_EXAMPLE).unwrap();
        let m1 = artifact.vm_module().unwrap() as *const _;
        VmEngine.run(&artifact, &cfg(2)).unwrap();
        let m2 = artifact.vm_module().unwrap() as *const _;
        assert_eq!(m1, m2, "module must be lowered once and cached");
    }

    #[test]
    fn vm_engine_reports_srs_as_compile_error() {
        let artifact =
            Compiled::new("HAI 1.2\nI HAS A x ITZ 1\nVISIBLE SRS \"x\"\nKTHXBYE").unwrap();
        // The interpreter runs it fine...
        let ok = InterpEngine.run(&artifact, &cfg(1)).unwrap();
        assert_eq!(ok.outputs[0], "1\n");
        // ...the VM rejects it at (lazy) lowering time.
        match VmEngine.run(&artifact, &cfg(1)) {
            Err(LolError::Compile(msg)) => assert!(msg.contains("VMC0001"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn seed_sweep_changes_whatevr_streams() {
        let artifact = Compiled::new("HAI 1.2\nVISIBLE WHATEVR\nKTHXBYE").unwrap();
        let sweep = vec![cfg(2).seed(1), cfg(2).seed(1), cfg(2).seed(2)];
        let r: Vec<_> = InterpEngine
            .run_many(&artifact, &sweep)
            .into_iter()
            .map(|r| r.unwrap().outputs)
            .collect();
        assert_eq!(r[0], r[1], "same seed must reproduce");
        assert_ne!(r[0], r[2], "different seed must differ");
    }
}
