//! Compile-once / run-many execution: [`Compiled`] artifacts,
//! [`Engine`] backends and structured [`RunReport`]s.
//!
//! The front end (lex → parse → sema) runs **once**, producing a
//! [`Compiled`] artifact. Any number of executions — across PE counts,
//! seeds, latency models and backends — then reuse that artifact:
//!
//! ```
//! use lolcode::{compile, engine_for, Backend, RunConfig};
//!
//! let artifact = compile("HAI 1.2\nVISIBLE \"HAI \" ME\nKTHXBYE").unwrap();
//! let engine = engine_for(Backend::Interp);
//! let sweep: Vec<RunConfig> = (1..=4).map(RunConfig::new).collect();
//! for report in engine.run_many(&artifact, &sweep) {
//!     let report = report.unwrap();
//!     assert_eq!(report.outputs.len(), report.config.n_pes);
//! }
//! ```
//!
//! A [`RunReport`] carries everything a run produced: per-PE `VISIBLE`
//! output, per-PE communication statistics from the PGAS substrate,
//! wall-clock time, and the effective configuration — where the old
//! `run_source` API returned bare stdout strings and dropped the rest.
//!
//! Engines are looked up through an [`EngineRegistry`] rather than a
//! hardcoded match, so the paper's full three-path pipeline — interpret
//! ([`InterpEngine`]), run bytecode ([`VmEngine`]), or translate to C
//! over the SHMEM runtime and execute the binary ([`CEngine`]) — plus
//! the mega-scale discrete-event simulator ([`SimEngine`]) sit behind
//! one dispatch point, and a future backend slots in without touching
//! callers. [`engine_for`] consults the process-wide standard
//! registry; embedders that want to substitute or extend engines build
//! their own [`EngineRegistry`].

use crate::{Backend, LolError, RunConfig};
use lol_ast::{Program, SourceMap};
use lol_c_codegen::driver::{self, DriverError, RunRequest};
use lol_sema::Analysis;
use lol_shmem::{run_spmd, CommStats, Pe, SpmdError};
use lol_trace::{ClockMode, PeTrace, Trace};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A program that has been parsed and semantically analyzed exactly
/// once, ready to run any number of times on any [`Engine`].
///
/// Backend lowering (the bytecode module for [`VmEngine`]) happens
/// lazily on first use and is cached, so an interpreter-only workload
/// never pays for it and a VM sweep pays exactly once.
pub struct Compiled {
    source: String,
    program: Program,
    analysis: Analysis,
    warnings: Vec<String>,
    /// Front-end phase costs measured by [`Compiled::new`]:
    /// `[lex_ns, parse_ns, sema_ns]`.
    front_ns: [u64; 3],
    /// Backend lowering costs, recorded by the lazy init closures
    /// below (0 until the respective lowering has run).
    vm_compile_ns: AtomicU64,
    c_build_ns: AtomicU64,
    vm_module: OnceLock<Result<lol_vm::Module, LolError>>,
    c_binary: OnceLock<Result<driver::CBinary, LolError>>,
}

impl Compiled {
    /// Lex, parse and analyze `src`. This is the only place in the
    /// pipeline that looks at source text — and therefore the place
    /// that times the front-end phases (see [`Compiled::phases`]).
    pub fn new(src: &str) -> Result<Self, LolError> {
        let t0 = Instant::now();
        let lexed = lol_lexer::lex(src);
        let lex_ns = t0.elapsed().as_nanos() as u64;
        let t1 = Instant::now();
        let out = lol_parser::parse_tokens(lexed);
        let parse_ns = t1.elapsed().as_nanos() as u64;
        let sm = SourceMap::new(src);
        if out.diags.has_errors() {
            return Err(LolError::Parse(out.diags.render_all(&sm)));
        }
        let program = out.program.expect("program present when no errors");
        let t2 = Instant::now();
        let analysis = lol_sema::analyze(&program);
        let sema_ns = t2.elapsed().as_nanos() as u64;
        if analysis.diags.has_errors() {
            return Err(LolError::Sema(analysis.diags.render_all(&sm)));
        }
        let warnings = analysis.diags.iter().map(|d| d.render(&sm)).collect();
        Ok(Compiled {
            source: src.to_string(),
            program,
            analysis,
            warnings,
            front_ns: [lex_ns, parse_ns, sema_ns],
            vm_compile_ns: AtomicU64::new(0),
            c_build_ns: AtomicU64::new(0),
            vm_module: OnceLock::new(),
            c_binary: OnceLock::new(),
        })
    }

    /// The phase-timing breakdown for a run of `backend` on this
    /// artifact that spent `exec_ns` executing. The front-end costs
    /// were paid once at [`Compiled::new`]; the compile cost is the
    /// backend's lowering (0 for the interpreter, and 0 until the
    /// first run triggers the lazy lowering). `render_ns` starts at 0
    /// — whoever renders the report fills it in.
    pub fn phases(&self, backend: Backend, exec_ns: u64) -> PhaseTimings {
        let compile_ns = match backend {
            Backend::Interp => 0,
            Backend::Vm | Backend::Sim => self.vm_compile_ns.load(Ordering::Relaxed),
            Backend::C => self.c_build_ns.load(Ordering::Relaxed),
        };
        PhaseTimings {
            lex_ns: self.front_ns[0],
            parse_ns: self.front_ns[1],
            sema_ns: self.front_ns[2],
            compile_ns,
            exec_ns,
            render_ns: 0,
        }
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The parsed program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The semantic analysis (shared layout, symbol info).
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// Non-fatal diagnostics from analysis, already rendered.
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// The bytecode module for the VM backend, lowered on first call
    /// and cached. Fails for interpreter-only constructs (`SRS`).
    pub fn vm_module(&self) -> Result<&lol_vm::Module, LolError> {
        self.vm_module
            .get_or_init(|| {
                let t0 = Instant::now();
                let r = lol_vm::compile(&self.program, &self.analysis)
                    .map_err(|d| LolError::Compile(d.render(&SourceMap::new(&self.source))));
                self.vm_compile_ns.store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                r
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// Translate to C + OpenSHMEM (the paper's `lcc` output).
    pub fn emit_c(&self) -> Result<String, LolError> {
        lol_c_codegen::emit_c(&self.program, &self.analysis)
            .map_err(|d| LolError::Compile(d.render(&SourceMap::new(&self.source))))
    }

    /// The compiled C-backend binary, emitted and built by the system
    /// C compiler on first call and cached (like [`Self::vm_module`],
    /// so a sweep across PE counts pays for `cc` exactly once). Fails
    /// with [`LolError::Unsupported`] when the machine has no C
    /// compiler, [`LolError::Compile`] for emit/`cc` errors.
    pub fn c_binary(&self) -> Result<&driver::CBinary, LolError> {
        self.c_binary
            .get_or_init(|| {
                let t0 = Instant::now();
                let r = self.emit_c().and_then(|c| {
                    driver::build(&c).map_err(|e| match e {
                        DriverError::NoCompiler => LolError::Unsupported(format!("O NOES! {e}")),
                        other => {
                            LolError::Compile(format!("O NOES! DA C BACKEND HAZ A SAD: {other}"))
                        }
                    })
                });
                self.c_build_ns.store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                r
            })
            .as_ref()
            .map_err(Clone::clone)
    }
}

impl std::fmt::Debug for Compiled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Compiled")
            .field("source_bytes", &self.source.len())
            .field("warnings", &self.warnings.len())
            .field("vm_lowered", &self.vm_module.get().is_some())
            .field("c_built", &self.c_binary.get().is_some())
            .finish()
    }
}

/// Host-time cost of each pipeline phase for one run, in nanoseconds.
///
/// The front-end phases (lex/parse/sema) are paid once per artifact;
/// compile is the backend's lazy lowering (VM bytecode or the C
/// build), 0 for the interpreter and for runs that reused a cached
/// lowering; exec is the SPMD job itself; render is filled in by
/// whoever renders the report (the CLI's `--timings`), 0 otherwise.
/// All values are machine-dependent — they ride the *timing* form of
/// the report JSON, never the stable form.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Tokenizing the source.
    pub lex_ns: u64,
    /// Parsing the token stream.
    pub parse_ns: u64,
    /// Semantic analysis (symbol/shared layout).
    pub sema_ns: u64,
    /// Backend lowering (VM bytecode compile or C emit + `cc`).
    pub compile_ns: u64,
    /// The SPMD execution itself (host time, even on `sim`).
    pub exec_ns: u64,
    /// Rendering output/report, when the caller measured it.
    pub render_ns: u64,
}

impl PhaseTimings {
    /// Sum of all phases.
    pub fn total_ns(&self) -> u64 {
        self.lex_ns + self.parse_ns + self.sema_ns + self.compile_ns + self.exec_ns + self.render_ns
    }
}

/// Scheduler counters from a [`Backend::Sim`] run (see `lol-sim`):
/// how much discrete-event work the simulated job cost the host.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Discrete events processed across all shards.
    pub events: u64,
    /// Peak size of the event heap / calendar queues.
    pub heap_peak: u64,
    /// Barrier episodes released in O(1) (all PEs arrived → epoch
    /// bump), the scheduler's fast path for `HUGZ`-heavy programs.
    pub barrier_episodes: u64,
    /// Cross-shard merge windows executed (0 on the sequential
    /// scheduler, which has no shards to merge).
    pub merge_windows: u64,
}

impl SimStats {
    /// Events per second of host time (the simulator's throughput).
    pub fn events_per_sec(&self, host_wall: Duration) -> u64 {
        let ns = host_wall.as_nanos() as u64;
        if ns == 0 {
            return 0;
        }
        (self.events as u128 * 1_000_000_000 / ns as u128) as u64
    }
}

/// One contiguous hot bytecode range from a profiled VM run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotSpot {
    /// Which chunk (`main` or the function's source name).
    pub chunk: String,
    /// First bytecode offset of the range.
    pub start: usize,
    /// One past the last bytecode offset.
    pub end: usize,
    /// Total op executions inside the range.
    pub count: u64,
}

/// Job-wide bytecode execution profile, aggregated across PEs
/// (present iff [`RunConfig::profile`] was set on a [`Backend::Vm`]
/// run — the other backends execute no bytecode in-process).
#[derive(Clone, Debug, Default)]
pub struct ProfileReport {
    /// Total ops executed across all PEs.
    pub total_ops: u64,
    /// Share of ops that were fused superinstructions, in parts per
    /// 10 000.
    pub super_bp: u64,
    /// Executed opcodes as `(name, count, is_superinstruction)`,
    /// descending by count.
    pub ops: Vec<(String, u64, bool)>,
    /// Top contiguous hot bytecode ranges, hottest first.
    pub hot: Vec<HotSpot>,
}

/// Everything one execution produced.
///
/// ```
/// use lolcode::{compile, engine_for, Backend, RunConfig};
///
/// let artifact = compile("HAI 1.2\nVISIBLE \"OH HAI \" ME\nKTHXBYE").unwrap();
/// let report = engine_for(Backend::Vm).run(&artifact, &RunConfig::new(2)).unwrap();
/// assert_eq!(report.output(1), "OH HAI 1\n");     // per-PE VISIBLE output
/// assert_eq!(report.stats.len(), 2);              // per-PE CommStats
/// assert_eq!(report.total_stats().scalar_ops(), 0); // job-wide totals
/// assert_eq!(report.config.n_pes, 2);             // the effective config
/// ```
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Which engine ran.
    pub backend: Backend,
    /// Per-PE `VISIBLE` output, in PE order.
    pub outputs: Vec<String>,
    /// Per-PE communication statistics, in PE order.
    pub stats: Vec<CommStats>,
    /// Wall-clock time of the SPMD job (launch to join). For
    /// [`Backend::Sim`] this is the *simulated* makespan, not host
    /// time — see [`RunReport::host_wall`].
    pub wall: Duration,
    /// Real host time the run cost, on every backend. Identical to
    /// [`RunReport::wall`] for the threaded engines; for
    /// [`Backend::Sim`] (whose `wall` is simulated) this is how long
    /// the simulator itself took, which is what perf gates and the
    /// sweep thread-budget care about.
    pub host_wall: Duration,
    /// The job's *virtual* wall — the maximum final per-PE logical
    /// clock — present iff the config ran under [`ClockMode::Virtual`].
    /// Deterministic: a fixed program/config reproduces it byte for
    /// byte on any machine.
    pub virtual_wall: Option<Duration>,
    /// Per-PE communication event streams, present iff
    /// [`RunConfig::trace`] was set.
    pub trace: Option<Trace>,
    /// Host-time cost of each pipeline phase (machine-dependent;
    /// rides only the timing form of the report JSON).
    pub phases: PhaseTimings,
    /// Discrete-event scheduler counters, present iff the run was
    /// [`Backend::Sim`].
    pub sim: Option<SimStats>,
    /// Aggregated bytecode profile, present iff
    /// [`RunConfig::profile`] was set on a [`Backend::Vm`] run.
    pub profile: Option<ProfileReport>,
    /// The effective configuration the job ran with.
    pub config: RunConfig,
}

impl RunReport {
    /// Number of PEs that ran.
    pub fn n_pes(&self) -> usize {
        self.outputs.len()
    }

    /// One PE's captured output.
    pub fn output(&self, pe: usize) -> &str {
        &self.outputs[pe]
    }

    /// Job-wide communication totals (all PEs folded together).
    pub fn total_stats(&self) -> CommStats {
        self.stats.iter().sum()
    }

    /// The wall time scaling metrics should use: the virtual wall when
    /// the run accounted time ([`ClockMode::Virtual`]), the real wall
    /// otherwise. Sweeps derive speedup/efficiency from this, which is
    /// what makes `clock=virtual` scaling curves machine-independent.
    pub fn effective_wall(&self) -> Duration {
        self.virtual_wall.unwrap_or(self.wall)
    }
}

/// An execution backend that can run a [`Compiled`] artifact.
///
/// The three standard engines ([`InterpEngine`], [`VmEngine`],
/// [`CEngine`]) are reached through [`engine_for`]; all of them accept
/// the same [`RunConfig`], including the latency/barrier/lock ablation
/// axes:
///
/// ```
/// use lolcode::{compile, engine_for, Backend, Engine, RunConfig};
///
/// let artifact = compile("HAI 1.2\nVISIBLE ME\nKTHXBYE").unwrap();
/// let engine: &dyn Engine = engine_for(Backend::Interp);
/// assert_eq!(engine.backend(), Backend::Interp);
/// assert!(engine.available()); // in-process engines always are
///
/// // run_many sweeps one artifact across configs without re-parsing.
/// let sweep: Vec<RunConfig> = (1..=3).map(RunConfig::new).collect();
/// let reports = engine.run_many(&artifact, &sweep);
/// assert_eq!(reports.len(), 3);
/// assert_eq!(reports[2].as_ref().unwrap().outputs.len(), 3);
/// ```
pub trait Engine: Send + Sync {
    /// Which [`Backend`] this engine implements.
    fn backend(&self) -> Backend;

    /// Can this engine run *at all* on this machine? In-process
    /// engines always can; the C engine needs a system C compiler.
    /// When `false`, [`Engine::run`] returns [`LolError::Unsupported`]
    /// for every config.
    fn available(&self) -> bool {
        true
    }

    /// Execute the artifact once under `cfg`.
    fn run(&self, artifact: &Compiled, cfg: &RunConfig) -> Result<RunReport, LolError>;

    /// Execute the artifact once per config — a sweep over PE counts,
    /// seeds, latency models, … — reusing the artifact throughout (the
    /// front end never reruns). Reports come back in config order; a
    /// failing config does not abort the rest of the sweep.
    fn run_many(
        &self,
        artifact: &Compiled,
        configs: &[RunConfig],
    ) -> Vec<Result<RunReport, LolError>> {
        configs.iter().map(|cfg| self.run(artifact, cfg)).collect()
    }
}

/// What the in-process engines collect from each PE at the end of its
/// SPMD body.
type PeOutcome = (String, CommStats, Option<PeTrace>, u64);

/// Collect one PE's results (output, stats, trace, virtual clock) —
/// shared by the interpreter and VM engine bodies.
fn pe_outcome(pe: &Pe<'_>, out: String) -> PeOutcome {
    (out, pe.stats(), pe.take_trace(), pe.virtual_ns())
}

/// Assemble a report from per-PE outcomes.
fn report(
    backend: Backend,
    per_pe: Vec<PeOutcome>,
    wall: Duration,
    config: RunConfig,
) -> RunReport {
    let mut outputs = Vec::with_capacity(per_pe.len());
    let mut stats = Vec::with_capacity(per_pe.len());
    let mut traces = Vec::with_capacity(per_pe.len());
    let mut virtual_ns = 0u64;
    for (out, st, tr, vns) in per_pe {
        outputs.push(out);
        stats.push(st);
        traces.push(tr);
        virtual_ns = virtual_ns.max(vns);
    }
    let trace = config.trace.then(|| {
        Trace::new(config.clock, traces.into_iter().map(Option::unwrap_or_default).collect())
    });
    let virtual_wall =
        (config.clock == ClockMode::Virtual).then(|| Duration::from_nanos(virtual_ns));
    RunReport {
        backend,
        outputs,
        stats,
        wall,
        host_wall: wall,
        virtual_wall,
        trace,
        phases: PhaseTimings::default(),
        sim: None,
        profile: None,
        config,
    }
}

/// The tree-walking interpreter backend (full language, including
/// `SRS`).
#[derive(Clone, Copy, Debug, Default)]
pub struct InterpEngine;

impl Engine for InterpEngine {
    fn backend(&self) -> Backend {
        Backend::Interp
    }

    fn run(&self, artifact: &Compiled, cfg: &RunConfig) -> Result<RunReport, LolError> {
        cfg.validate()?;
        let t0 = Instant::now();
        let per_pe = run_spmd(cfg.shmem(), |pe| {
            match lol_interp::run_on_pe(&artifact.program, &artifact.analysis, pe, &cfg.input) {
                Ok(out) => pe_outcome(pe, out),
                Err(e) => pe.fail(e.to_string()),
            }
        })
        .map_err(LolError::Runtime)?;
        let wall = t0.elapsed();
        let mut r = report(Backend::Interp, per_pe, wall, cfg.clone());
        r.phases = artifact.phases(Backend::Interp, wall.as_nanos() as u64);
        Ok(r)
    }
}

/// The bytecode VM backend (compiled path; rejects `SRS`).
#[derive(Clone, Copy, Debug, Default)]
pub struct VmEngine;

impl Engine for VmEngine {
    fn backend(&self) -> Backend {
        Backend::Vm
    }

    fn run(&self, artifact: &Compiled, cfg: &RunConfig) -> Result<RunReport, LolError> {
        cfg.validate()?;
        let module = artifact.vm_module()?;
        // Per-PE profiles merge into one job-wide profile as each PE
        // finishes (merging is element-wise addition, so the result is
        // independent of completion order). The unprofiled path is
        // untouched — no lock, no counters.
        let merged = cfg.profile.then(|| Mutex::new(lol_vm::VmProfile::for_module(module)));
        let t0 = Instant::now();
        let per_pe = run_spmd(cfg.shmem(), |pe| {
            if let Some(m) = &merged {
                match lol_vm::run_on_pe_profiled(module, pe, &cfg.input) {
                    Ok((out, prof)) => {
                        m.lock().unwrap().merge(&prof);
                        pe_outcome(pe, out)
                    }
                    Err(e) => pe.fail(e.to_string()),
                }
            } else {
                match lol_vm::run_on_pe(module, pe, &cfg.input) {
                    Ok(out) => pe_outcome(pe, out),
                    Err(e) => pe.fail(e.to_string()),
                }
            }
        })
        .map_err(LolError::Runtime)?;
        let wall = t0.elapsed();
        let mut r = report(Backend::Vm, per_pe, wall, cfg.clone());
        r.phases = artifact.phases(Backend::Vm, wall.as_nanos() as u64);
        r.profile = merged.map(|m| profile_report(module, &m.into_inner().unwrap()));
        Ok(r)
    }
}

/// Convert the VM's raw counters into the report's named form.
fn profile_report(module: &lol_vm::Module, p: &lol_vm::VmProfile) -> ProfileReport {
    ProfileReport {
        total_ops: p.total(),
        super_bp: p.super_bp(),
        ops: p.op_counts().into_iter().map(|(n, c, s)| (n.to_string(), c, s)).collect(),
        hot: p
            .hot_ranges(5)
            .into_iter()
            .map(|h| HotSpot {
                chunk: lol_vm::VmProfile::chunk_label(module, h.chunk),
                start: h.start,
                end: h.end,
                count: h.count,
            })
            .collect(),
    }
}

/// The out-of-process C backend: `lcc`-emitted C + the multi-PE SHMEM
/// stub, compiled by the system C compiler (probed once per process)
/// and run as a native binary; per-PE outputs and operation counts are
/// parsed back into the same [`RunReport`] shape the in-process
/// engines produce.
///
/// The full sweep matrix crosses the process boundary: interconnect
/// latency models ([`RunConfig::latency`]) and the barrier/lock
/// algorithm ablations ([`RunConfig::barrier`] / [`RunConfig::lock`])
/// ride the stub's env protocol, so the paper's third path sweeps the
/// same axes as the in-process engines.
///
/// Degradation contract: on a machine without a C compiler — or for a
/// PE count beyond the stub's thread cap — `run` returns
/// [`LolError::Unsupported`] with a clear reason instead of failing.
#[derive(Clone, Copy, Debug, Default)]
pub struct CEngine;

impl Engine for CEngine {
    fn backend(&self) -> Backend {
        Backend::C
    }

    fn available(&self) -> bool {
        driver::cc().is_some()
    }

    fn run(&self, artifact: &Compiled, cfg: &RunConfig) -> Result<RunReport, LolError> {
        cfg.validate()?;
        if cfg.n_pes > driver::MAX_PES {
            return Err(LolError::Unsupported(format!(
                "O NOES! DA C BACKEND'S STUB CAPS AT {} PE THREADS, NOT {}",
                driver::MAX_PES,
                cfg.n_pes
            )));
        }
        // Latency models, barrier algorithms and lock algorithms all
        // cross the env protocol: the stub charges the interconnect
        // model at its remote-access choke point and dispatches on the
        // selected barrier/lock algorithm, so the full ablation matrix
        // runs on all three backends. (`heap_words` is genuinely
        // meaningless here — the C symmetric segment is statically
        // sized — so it is ignored.)
        let binary = artifact.c_binary()?;
        let req = RunRequest {
            n_pes: cfg.n_pes,
            seed: cfg.seed,
            input: &cfg.input,
            timeout: cfg.timeout,
            latency: cfg.latency,
            barrier: cfg.barrier,
            lock: cfg.lock,
            clock: cfg.clock,
            trace: cfg.trace,
        };
        let t0 = Instant::now();
        match binary.run(&req) {
            Ok(out) => Ok(RunReport {
                backend: Backend::C,
                outputs: out.outputs,
                stats: out.stats,
                wall: out.wall,
                host_wall: out.wall,
                virtual_wall: out.virtual_ns.map(Duration::from_nanos),
                trace: out.traces.map(|pes| Trace::new(cfg.clock, pes)),
                phases: artifact.phases(Backend::C, out.wall.as_nanos() as u64),
                sim: None,
                profile: None,
                config: cfg.clone(),
            }),
            Err(DriverError::Program { stderr, .. }) => Err(LolError::Runtime(SpmdError {
                // The stub reports faults process-wide, not per PE.
                pe: 0,
                message: if stderr.trim().is_empty() {
                    "DA C BINARY DIED WIF NO MESSAGE".to_string()
                } else {
                    stderr.trim().to_string()
                },
            })),
            Err(DriverError::Timeout(_)) => Err(LolError::Runtime(SpmdError {
                pe: 0,
                message: format!(
                    "RUN0015 WATCHDOG: DA C BINARY HAZ BEEN RUNNIN {:?} — PROBABLY DEADLOCK",
                    t0.elapsed()
                ),
            })),
            Err(DriverError::NoCompiler) => {
                Err(LolError::Unsupported(format!("O NOES! {}", DriverError::NoCompiler)))
            }
            Err(other) => {
                Err(LolError::Compile(format!("O NOES! DA C BACKEND HAZ A SAD: {other}")))
            }
        }
    }
}

/// The discrete-event simulation backend (`lol-sim`): each PE is a
/// resumable VM machine driven by an event scheduler — sequential by
/// default, sharded across [`RunConfig::sim_jobs`] worker threads for
/// big lock-free jobs. PE counts scale to ~a million, executions are
/// fully deterministic at every `sim_jobs` setting, and outputs /
/// stats / traces / virtual walls are byte-identical to the threaded
/// engines on race-free programs.
///
/// Timing: the reported [`RunReport::wall`] is the *simulated*
/// makespan (the maximum final per-PE logical clock), not host time —
/// the simulator never sleeps, so a heavy latency model "slows" the
/// run without slowing you. Under [`ClockMode::Virtual`] the same
/// number also appears as [`RunReport::virtual_wall`], matching the
/// threaded engines exactly.
///
/// Compiles through the VM path, so it rejects `SRS` like [`VmEngine`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SimEngine;

impl Engine for SimEngine {
    fn backend(&self) -> Backend {
        Backend::Sim
    }

    fn run(&self, artifact: &Compiled, cfg: &RunConfig) -> Result<RunReport, LolError> {
        cfg.validate()?;
        let module = artifact.vm_module()?;
        let t0 = Instant::now();
        let sim = lol_sim::run_module(module, &cfg.shmem(), &cfg.input)
            .map_err(|e| LolError::Runtime(SpmdError { pe: e.pe, message: e.message }))?;
        let host_wall = t0.elapsed();
        let per_pe = sim
            .outputs
            .into_iter()
            .zip(sim.stats)
            .zip(sim.traces)
            .zip(sim.virtual_ns)
            .map(|(((out, st), tr), vns)| (out, st, tr, vns))
            .collect();
        let wall = Duration::from_nanos(sim.makespan_ns);
        let mut r = report(Backend::Sim, per_pe, wall, cfg.clone());
        r.host_wall = host_wall;
        r.phases = artifact.phases(Backend::Sim, host_wall.as_nanos() as u64);
        r.sim = Some(SimStats {
            events: sim.events,
            heap_peak: sim.sched.heap_peak,
            barrier_episodes: sim.sched.barrier_episodes,
            merge_windows: sim.sched.merge_windows,
        });
        Ok(r)
    }
}

// ---------------------------------------------------------------------
// Engine registry
// ---------------------------------------------------------------------

/// A table of execution engines, keyed by the [`Backend`] each one
/// implements. [`EngineRegistry::standard`] holds the three paper
/// paths (interp / vm / c) plus the simulator (sim);
/// [`EngineRegistry::register`] swaps or adds engines, so an embedder
/// (or a future backend) extends dispatch without touching every call
/// site.
pub struct EngineRegistry {
    engines: Vec<Box<dyn Engine>>,
}

impl EngineRegistry {
    /// An empty registry (no engines).
    pub fn new() -> Self {
        EngineRegistry { engines: Vec::new() }
    }

    /// The four standard engines: [`InterpEngine`], [`VmEngine`],
    /// [`CEngine`], [`SimEngine`].
    pub fn standard() -> Self {
        let mut reg = Self::new();
        reg.register(Box::new(InterpEngine));
        reg.register(Box::new(VmEngine));
        reg.register(Box::new(CEngine));
        reg.register(Box::new(SimEngine));
        reg
    }

    /// Add `engine`, replacing any previous engine for the same
    /// backend.
    pub fn register(&mut self, engine: Box<dyn Engine>) {
        let backend = engine.backend();
        self.engines.retain(|e| e.backend() != backend);
        self.engines.push(engine);
    }

    /// The engine for `backend`, if registered.
    pub fn get(&self, backend: Backend) -> Option<&dyn Engine> {
        self.engines.iter().find(|e| e.backend() == backend).map(|e| e.as_ref())
    }

    /// Every registered engine, in registration order.
    pub fn engines(&self) -> impl Iterator<Item = &dyn Engine> {
        self.engines.iter().map(|e| e.as_ref())
    }

    /// The backends this registry can dispatch.
    pub fn backends(&self) -> Vec<Backend> {
        self.engines.iter().map(|e| e.backend()).collect()
    }
}

impl Default for EngineRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

impl std::fmt::Debug for EngineRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineRegistry").field("backends", &self.backends()).finish()
    }
}

/// The process-wide standard registry (built once, on first use).
pub fn registry() -> &'static EngineRegistry {
    static REGISTRY: OnceLock<EngineRegistry> = OnceLock::new();
    REGISTRY.get_or_init(EngineRegistry::standard)
}

/// The standard engine implementing `backend`.
pub fn engine_for(backend: Backend) -> &'static dyn Engine {
    registry().get(backend).expect("standard registry covers every Backend variant")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;

    fn cfg(n: usize) -> RunConfig {
        RunConfig::new(n).timeout(Duration::from_secs(30))
    }

    #[test]
    fn compiled_artifact_runs_on_both_engines() {
        let artifact = Compiled::new(corpus::HELLO_PARALLEL).unwrap();
        let a = InterpEngine.run(&artifact, &cfg(3)).unwrap();
        let b = VmEngine.run(&artifact, &cfg(3)).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.backend, Backend::Interp);
        assert_eq!(b.backend, Backend::Vm);
    }

    #[test]
    fn report_carries_stats_wall_and_config() {
        let artifact = Compiled::new(corpus::BARRIER_EXAMPLE).unwrap();
        for engine in [engine_for(Backend::Interp), engine_for(Backend::Vm)] {
            let r = engine.run(&artifact, &cfg(4).seed(9)).unwrap();
            assert_eq!(r.n_pes(), 4);
            assert_eq!(r.stats.len(), 4);
            assert_eq!(r.config.n_pes, 4);
            assert_eq!(r.config.seed, 9);
            assert!(r.wall > Duration::ZERO);
            // The barrier example hugs twice plus the implicit
            // shmalloc barriers; every PE must agree on barrier count.
            for s in &r.stats {
                assert_eq!(s.barriers, r.stats[0].barriers, "{:?}", engine.backend());
                assert!(s.barriers >= 2);
            }
            // `TXT MAH BFF k, UR b R MAH a` does one remote put per PE.
            assert!(r.total_stats().remote_puts >= 4, "{:?}", engine.backend());
        }
    }

    #[test]
    fn run_many_sweeps_pe_counts_from_one_artifact() {
        let artifact = Compiled::new(corpus::HELLO_PARALLEL).unwrap();
        let sweep: Vec<RunConfig> = (1..=4).map(cfg).collect();
        let reports = InterpEngine.run_many(&artifact, &sweep);
        assert_eq!(reports.len(), 4);
        for (i, r) in reports.into_iter().enumerate() {
            let r = r.unwrap();
            assert_eq!(r.n_pes(), i + 1);
            assert_eq!(r.output(0), format!("HAI ITZ 0 OF {}\n", i + 1));
        }
    }

    #[test]
    fn run_many_continues_past_failing_configs() {
        let artifact =
            Compiled::new("HAI 1.2\nVISIBLE QUOSHUNT OF 1 AN DIFF OF ME AN 1\nKTHXBYE").unwrap();
        // 2 PEs: PE 1 divides by zero. 1 PE: fails on PE... ME=0 ->
        // ME-1 = -1, fine. Sweep mixes passing and failing configs.
        let sweep = vec![cfg(1), cfg(2).timeout(Duration::from_secs(5)), cfg(1)];
        let reports = VmEngine.run_many(&artifact, &sweep);
        assert!(reports[0].is_ok());
        assert!(matches!(reports[1], Err(LolError::Runtime(_))));
        assert!(reports[2].is_ok(), "sweep must continue after a failure");
    }

    #[test]
    fn vm_lowering_happens_once_and_is_shared() {
        let artifact = Compiled::new(corpus::RING_EXAMPLE).unwrap();
        let m1 = artifact.vm_module().unwrap() as *const _;
        VmEngine.run(&artifact, &cfg(2)).unwrap();
        let m2 = artifact.vm_module().unwrap() as *const _;
        assert_eq!(m1, m2, "module must be lowered once and cached");
    }

    #[test]
    fn vm_engine_reports_srs_as_compile_error() {
        let artifact =
            Compiled::new("HAI 1.2\nI HAS A x ITZ 1\nVISIBLE SRS \"x\"\nKTHXBYE").unwrap();
        // The interpreter runs it fine...
        let ok = InterpEngine.run(&artifact, &cfg(1)).unwrap();
        assert_eq!(ok.outputs[0], "1\n");
        // ...the VM rejects it at (lazy) lowering time.
        match VmEngine.run(&artifact, &cfg(1)) {
            Err(LolError::Compile(msg)) => assert!(msg.contains("VMC0001"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn standard_registry_covers_all_backends() {
        for b in Backend::ALL {
            assert_eq!(engine_for(b).backend(), b);
            assert!(registry().get(b).is_some());
        }
        assert_eq!(registry().backends(), Backend::ALL.to_vec());
    }

    #[test]
    fn registry_register_replaces_same_backend() {
        struct FakeInterp;
        impl Engine for FakeInterp {
            fn backend(&self) -> Backend {
                Backend::Interp
            }
            fn available(&self) -> bool {
                false
            }
            fn run(&self, _: &Compiled, _: &RunConfig) -> Result<RunReport, LolError> {
                Err(LolError::Unsupported("FAKE".into()))
            }
        }
        let mut reg = EngineRegistry::standard();
        assert!(reg.get(Backend::Interp).unwrap().available());
        reg.register(Box::new(FakeInterp));
        assert_eq!(reg.backends().len(), 4, "replacement, not duplication");
        assert!(!reg.get(Backend::Interp).unwrap().available());
        assert!(reg.get(Backend::Vm).unwrap().available(), "other engines untouched");
    }

    #[test]
    fn c_engine_runs_multi_pe_or_degrades_cleanly() {
        let engine = engine_for(Backend::C);
        let artifact = Compiled::new(corpus::HELLO_PARALLEL).unwrap();
        match engine.run(&artifact, &cfg(3)) {
            Ok(r) => {
                assert!(engine.available());
                assert_eq!(r.backend, Backend::C);
                assert_eq!(r.n_pes(), 3);
                for pe in 0..3 {
                    assert_eq!(r.output(pe), format!("HAI ITZ {pe} OF 3\n"));
                }
            }
            Err(LolError::Unsupported(msg)) => {
                assert!(!engine.available(), "unsupported only without a compiler: {msg}");
            }
            Err(other) => panic!("{other}"),
        }
    }

    #[test]
    fn c_engine_reports_over_cap_pe_counts_as_unsupported() {
        // The stub caps PE threads; wider configs must degrade, not
        // spawn a binary that refuses to start (a hard failure).
        let artifact = Compiled::new(corpus::HELLO_PARALLEL).unwrap();
        match CEngine.run(&artifact, &cfg(257)) {
            Err(LolError::Unsupported(msg)) => assert!(msg.contains("257"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn c_engine_runs_the_full_ablation_matrix() {
        // Latency models, barrier algorithms and lock algorithms used
        // to be Unsupported on the C path; now every combination runs
        // (through the stub's env protocol) and produces the same
        // output as the default config.
        if !CEngine.available() {
            eprintln!("skipping: no C compiler");
            return;
        }
        use lol_shmem::{BarrierKind, LockKind};
        let artifact = Compiled::new(corpus::LOCKS_EXAMPLE).unwrap();
        let baseline = CEngine.run(&artifact, &cfg(4)).unwrap();
        for latency in [
            crate::LatencyModel::xc40(),
            crate::LatencyModel::epiphany16(),
            "torus:2x2:10:5".parse().unwrap(),
        ] {
            for barrier in BarrierKind::ALL {
                for lock in LockKind::ALL {
                    let c = cfg(4).latency(latency).barrier(barrier).lock(lock);
                    let r = CEngine.run(&artifact, &c).unwrap_or_else(|e| {
                        panic!("latency={latency} barrier={barrier} lock={lock}: {e}")
                    });
                    assert_eq!(
                        r.outputs, baseline.outputs,
                        "outputs must not depend on latency={latency} barrier={barrier} lock={lock}"
                    );
                }
            }
        }
    }

    #[test]
    fn c_engine_latency_model_slows_remote_traffic() {
        // The paper's locality shape on the third backend: the same
        // halo-exchange program must take measurably longer under a
        // heavy flat model than with latency off, with identical
        // output (the model charges time, never changes results).
        if !CEngine.available() {
            eprintln!("skipping: no C compiler");
            return;
        }
        let artifact = Compiled::new(corpus::BARRIER_EXAMPLE).unwrap();
        let off = CEngine.run(&artifact, &cfg(2)).unwrap();
        let slow = CEngine
            .run(&artifact, &cfg(2).latency(crate::LatencyModel::Uniform { remote_ns: 30_000_000 }))
            .unwrap();
        assert_eq!(off.outputs, slow.outputs);
        // BARRIER_EXAMPLE does one remote put per PE; 2 PEs × 30ms
        // dwarfs scheduling noise.
        assert!(
            slow.wall > off.wall + Duration::from_millis(20),
            "flat:30ms should slow the run: off {:?} vs flat {:?}",
            off.wall,
            slow.wall
        );
    }

    #[test]
    fn c_binary_is_built_once_and_shared() {
        if !CEngine.available() {
            eprintln!("skipping: no C compiler");
            return;
        }
        let artifact = Compiled::new(corpus::HELLO_PARALLEL).unwrap();
        let b1 = artifact.c_binary().unwrap() as *const _;
        CEngine.run(&artifact, &cfg(2)).unwrap();
        let b2 = artifact.c_binary().unwrap() as *const _;
        assert_eq!(b1, b2, "binary must be built once and cached");
    }

    #[test]
    fn c_engine_surfaces_runtime_faults() {
        if !CEngine.available() {
            eprintln!("skipping: no C compiler");
            return;
        }
        let artifact = Compiled::new("HAI 1.2\nVISIBLE QUOSHUNT OF 1 AN 0\nKTHXBYE").unwrap();
        match CEngine.run(&artifact, &cfg(1)) {
            Err(LolError::Runtime(se)) => assert!(se.message.contains("RUN0001"), "{se}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sim_engine_matches_vm_without_threads() {
        let artifact = Compiled::new(corpus::RING_EXAMPLE).unwrap();
        let c = cfg(8).clock(ClockMode::Virtual).trace(true);
        let vm = VmEngine.run(&artifact, &c).unwrap();
        let sim = SimEngine.run(&artifact, &c).unwrap();
        assert_eq!(sim.backend, Backend::Sim);
        assert_eq!(sim.outputs, vm.outputs);
        assert_eq!(sim.stats, vm.stats);
        assert_eq!(sim.virtual_wall, vm.virtual_wall);
        let (st, vt) = (sim.trace.unwrap(), vm.trace.unwrap());
        assert_eq!(st.signature(), vt.signature());
        // The sim's wall IS the simulated makespan.
        assert_eq!(Some(sim.wall), sim.virtual_wall);
    }

    #[test]
    fn sim_engine_simulates_latency_instead_of_sleeping() {
        let artifact = Compiled::new(corpus::RING_EXAMPLE).unwrap();
        // A full second of per-hop latency: threaded engines would
        // sleep; the simulator just adds numbers.
        let heavy = cfg(4).latency(crate::LatencyModel::Uniform { remote_ns: 1_000_000_000 });
        let t0 = Instant::now();
        let r = SimEngine.run(&artifact, &heavy).unwrap();
        assert!(t0.elapsed() < Duration::from_secs(1), "sim must not sleep");
        assert!(r.wall >= Duration::from_secs(1), "but must report the simulated time");
        // SRS still fails at VM lowering, like the VM engine.
        let srs = Compiled::new("HAI 1.2\nI HAS A x ITZ 1\nVISIBLE SRS \"x\"\nKTHXBYE").unwrap();
        match SimEngine.run(&srs, &cfg(1)) {
            Err(LolError::Compile(msg)) => assert!(msg.contains("VMC0001"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn seed_sweep_changes_whatevr_streams() {
        let artifact = Compiled::new("HAI 1.2\nVISIBLE WHATEVR\nKTHXBYE").unwrap();
        let sweep = vec![cfg(2).seed(1), cfg(2).seed(1), cfg(2).seed(2)];
        let r: Vec<_> = InterpEngine
            .run_many(&artifact, &sweep)
            .into_iter()
            .map(|r| r.unwrap().outputs)
            .collect();
        assert_eq!(r[0], r[1], "same seed must reproduce");
        assert_ne!(r[0], r[2], "different seed must differ");
    }
}
