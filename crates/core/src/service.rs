//! Service-layer plumbing shared by the `lold` playground daemon
//! (`crates/serve`) and the CLI: per-request [`Quotas`], the stable
//! single-run report JSON ([`run_report_json`]), and the exhaustive
//! [`LolError`] → HTTP status mapping ([`http_status`]).
//!
//! This lives in `lolcode` rather than `lol-serve` so that the quota
//! hooks and the response serialization are part of the execution
//! core's contract: `lolrun --json` and `POST /run` render the same
//! bytes for the same run, and adding a [`LolError`] variant without
//! deciding its service mapping is a **compile error** (the matches
//! below have no wildcard arm).

use crate::sweep;
use crate::{Backend, LolError, RunConfig, RunReport};
use std::time::Duration;

// ---------------------------------------------------------------------
// Quotas
// ---------------------------------------------------------------------

/// Per-request resource quotas for a long-running service.
///
/// A playground daemon runs untrusted programs from many concurrent
/// clients; quotas bound what any single request may cost. Violations
/// degrade to structured errors ([`QuotaViolation`], rendered as
/// `SRV02xx` JSON by the service) — they never kill a worker.
///
/// ```
/// use lolcode::{service::Quotas, RunConfig};
///
/// let q = Quotas::default();
/// assert!(q.admit(&RunConfig::new(4)).is_ok());
/// assert!(q.admit(&RunConfig::new(q.max_pes + 1)).is_err());
/// ```
#[derive(Clone, Debug)]
pub struct Quotas {
    /// Largest PE count a single run may request.
    pub max_pes: usize,
    /// Host wall-clock cap per run: [`RunConfig::timeout`] is clamped
    /// to this, so the substrate's deadlock watchdog doubles as the
    /// service's execution deadline.
    pub max_wall: Duration,
    /// Simulated/virtual wall cap in nanoseconds: a run whose virtual
    /// wall (or simulated makespan, on [`Backend::Sim`]) exceeds this
    /// is reported as a quota violation after the fact. The *host*
    /// cost is already bounded by [`Quotas::max_wall`]; this bounds
    /// the response's claim to simulated time (a classroom `1s/hop ×
    /// 1M PEs` request shouldn't "succeed" with a thousand-year wall).
    pub max_virtual_ns: u64,
    /// Largest HTTP request body the service will read, in bytes.
    pub max_body_bytes: usize,
    /// Largest config matrix one `/sweep` request may expand to.
    pub max_configs: usize,
}

impl Default for Quotas {
    /// Classroom-friendly defaults: 64k PEs, 10s of host wall, one
    /// simulated hour, 1 MiB bodies, 64-config sweeps.
    fn default() -> Self {
        Quotas {
            max_pes: 65_536,
            max_wall: Duration::from_secs(10),
            max_virtual_ns: 3_600_000_000_000,
            max_body_bytes: 1 << 20,
            max_configs: 64,
        }
    }
}

/// A request that asked for more than its [`Quotas`] allow. Each
/// variant carries what was asked and what the cap is; [`code`]
/// assigns the stable `SRV02xx` registry code the service serializes.
///
/// [`code`]: QuotaViolation::code
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuotaViolation {
    /// `n_pes` exceeded [`Quotas::max_pes`].
    PeCap {
        /// Requested PE count.
        want: usize,
        /// The configured cap.
        cap: usize,
    },
    /// A sweep expanded to more configs than [`Quotas::max_configs`].
    ConfigCap {
        /// Expanded config count.
        want: usize,
        /// The configured cap.
        cap: usize,
    },
    /// The run's virtual/simulated wall exceeded
    /// [`Quotas::max_virtual_ns`].
    VirtualWallCap {
        /// The wall the run produced, in nanoseconds.
        got_ns: u64,
        /// The configured cap, in nanoseconds.
        cap_ns: u64,
    },
    /// The request body exceeded [`Quotas::max_body_bytes`].
    BodyCap {
        /// Declared (or read) body size in bytes.
        got: usize,
        /// The configured cap.
        cap: usize,
    },
}

impl QuotaViolation {
    /// The stable `SRV02xx` error-registry code for this violation
    /// (see `docs/SERVE.md`).
    pub fn code(&self) -> &'static str {
        match self {
            QuotaViolation::PeCap { .. } => "SRV0201",
            QuotaViolation::ConfigCap { .. } => "SRV0202",
            QuotaViolation::VirtualWallCap { .. } => "SRV0203",
            QuotaViolation::BodyCap { .. } => "SRV0204",
        }
    }

    /// The HTTP status the service answers with: 413 for an oversized
    /// body, 422 for everything else (the request parsed fine; the
    /// *semantics* exceed policy).
    pub fn status(&self) -> u16 {
        match self {
            QuotaViolation::BodyCap { .. } => 413,
            _ => 422,
        }
    }
}

impl std::fmt::Display for QuotaViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuotaViolation::PeCap { want, cap } => {
                write!(f, "O NOES! {want} PES IZ OVER DA QUOTA ({cap} MAX)")
            }
            QuotaViolation::ConfigCap { want, cap } => {
                write!(f, "O NOES! DIS SWEEP HAZ {want} CONFIGS — QUOTA IZ {cap}")
            }
            QuotaViolation::VirtualWallCap { got_ns, cap_ns } => {
                write!(f, "O NOES! DA RUN SIMULATED {got_ns}ns OF WALL — QUOTA IZ {cap_ns}ns")
            }
            QuotaViolation::BodyCap { got, cap } => {
                write!(f, "O NOES! DA REQUEST BODY HAZ {got} BYTES — QUOTA IZ {cap}")
            }
        }
    }
}

impl std::error::Error for QuotaViolation {}

impl Quotas {
    /// Admit one run config: reject a PE count over
    /// [`Quotas::max_pes`], clamp the watchdog timeout to
    /// [`Quotas::max_wall`], and hand back the effective config.
    pub fn admit(&self, cfg: &RunConfig) -> Result<RunConfig, QuotaViolation> {
        if cfg.n_pes > self.max_pes {
            return Err(QuotaViolation::PeCap { want: cfg.n_pes, cap: self.max_pes });
        }
        let mut out = cfg.clone();
        if out.timeout.is_zero() || out.timeout > self.max_wall {
            out.timeout = self.max_wall;
        }
        Ok(out)
    }

    /// Admit a whole sweep matrix: the config count against
    /// [`Quotas::max_configs`], then every config via
    /// [`Quotas::admit`] (first violation wins).
    pub fn admit_many(&self, configs: &[RunConfig]) -> Result<(), QuotaViolation> {
        if configs.len() > self.max_configs {
            return Err(QuotaViolation::ConfigCap { want: configs.len(), cap: self.max_configs });
        }
        for cfg in configs {
            self.admit(cfg)?;
        }
        Ok(())
    }

    /// Post-run hook: the virtual/simulated wall cap. The host cost
    /// was already bounded by the clamped timeout; this rejects
    /// responses that *claim* more simulated time than policy allows.
    pub fn check_report(&self, r: &RunReport) -> Result<(), QuotaViolation> {
        let simulated_ns = match r.virtual_wall {
            Some(vw) => Some(vw.as_nanos() as u64),
            // The sim backend's wall IS the simulated makespan even
            // under the default wall clock.
            None if r.backend == Backend::Sim => Some(r.wall.as_nanos() as u64),
            None => None,
        };
        if let Some(got_ns) = simulated_ns {
            if got_ns > self.max_virtual_ns {
                return Err(QuotaViolation::VirtualWallCap { got_ns, cap_ns: self.max_virtual_ns });
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// LolError -> HTTP mapping
// ---------------------------------------------------------------------

/// The HTTP status a service answers with for each [`LolError`]
/// variant.
///
/// Deliberately a `match` with **no wildcard arm**: adding a
/// [`LolError`] variant without deciding its service mapping is a
/// compile error, not a silent 500.
pub fn http_status(err: &LolError) -> u16 {
    match err {
        // The client sent a program/config the toolchain rejects.
        LolError::Parse(_) => 400,
        LolError::Sema(_) => 400,
        LolError::Compile(_) => 400,
        LolError::Config(_) => 400,
        // This machine genuinely can't run that (e.g. the C backend
        // without a C compiler): Not Implemented, not Bad Request.
        LolError::Unsupported(_) => 501,
        // Deliberately-not-run (resume bookkeeping): a conflict with
        // prior state, never a service failure.
        LolError::Skipped(_) => 409,
        // The program is valid but faulted while running; the request
        // itself was well-formed.
        LolError::Runtime(_) => 422,
    }
}

/// The stable `SRV04xx` error-registry code for each [`LolError`]
/// variant (the rendered message keeps its own `O NOES!`/`RUN0xxx`
/// detail). Exhaustive for the same reason as [`http_status`].
pub fn error_code(err: &LolError) -> &'static str {
    match err {
        LolError::Parse(_) => "SRV0411",
        LolError::Sema(_) => "SRV0412",
        LolError::Compile(_) => "SRV0413",
        LolError::Config(_) => "SRV0414",
        LolError::Unsupported(_) => "SRV0415",
        LolError::Skipped(_) => "SRV0416",
        LolError::Runtime(_) => "SRV0417",
    }
}

// ---------------------------------------------------------------------
// Single-run report JSON
// ---------------------------------------------------------------------

/// Serialize one [`RunReport`] as a single JSON object — the body of
/// the service's `POST /run` response and of single-run
/// `lolrun --json`, rendered by the same code so the two can never
/// drift apart.
///
/// With `timing == false` (the **stable** form) the object is
/// deterministic for a deterministic run: config identity, per-PE
/// outputs, output hash, comm stats, and the virtual wall when the
/// run accounted one — no host timing. `timing == true` appends
/// `wall_ns`/`host_wall_ns` plus the observability riders: a
/// `phases` breakdown, a `sim` scheduler block on [`Backend::Sim`]
/// runs, and a `profile` block when [`RunConfig::profile`] was set
/// (all machine-dependent, for benchmarking).
///
/// [`RunConfig::profile`]: crate::RunConfig::profile
///
/// ```
/// use lolcode::{compile, engine_for, service::run_report_json, Backend, RunConfig};
///
/// let artifact = compile("HAI 1.2\nVISIBLE ME\nKTHXBYE").unwrap();
/// let cfg = RunConfig::new(2).backend(Backend::Vm);
/// let a = engine_for(Backend::Vm).run(&artifact, &cfg).unwrap();
/// let b = engine_for(Backend::Vm).run(&artifact, &cfg).unwrap();
/// assert_eq!(run_report_json(&a, false), run_report_json(&b, false));
/// assert!(run_report_json(&a, true).contains("\"host_wall_ns\""));
/// ```
pub fn run_report_json(r: &RunReport, timing: bool) -> String {
    let mut out = String::from("{");
    // The effective config, pinned to the backend that actually ran
    // (callers may leave RunConfig::backend at its default).
    let mut cfg = r.config.clone();
    cfg.backend = r.backend;
    sweep::push_config_fields(&mut out, &cfg);
    out.push_str("\"ok\": true, ");
    if timing {
        out.push_str(&format!("\"wall_ns\": {}, ", r.wall.as_nanos()));
        out.push_str(&format!("\"host_wall_ns\": {}, ", r.host_wall.as_nanos()));
        // Observability riders: host-dependent like the walls, so they
        // live on the timing form only — the stable form stays pinned.
        let p = &r.phases;
        out.push_str(&format!(
            "\"phases\": {{\"lex_ns\": {}, \"parse_ns\": {}, \"sema_ns\": {}, \
             \"compile_ns\": {}, \"exec_ns\": {}, \"render_ns\": {}}}, ",
            p.lex_ns, p.parse_ns, p.sema_ns, p.compile_ns, p.exec_ns, p.render_ns
        ));
        if let Some(s) = &r.sim {
            out.push_str(&format!(
                "\"sim\": {{\"events\": {}, \"heap_peak\": {}, \"barrier_episodes\": {}, \
                 \"merge_windows\": {}, \"events_per_sec\": {}}}, ",
                s.events,
                s.heap_peak,
                s.barrier_episodes,
                s.merge_windows,
                s.events_per_sec(r.host_wall)
            ));
        }
        if let Some(p) = &r.profile {
            out.push_str(&format!(
                "\"profile\": {{\"total_ops\": {}, \"super_bp\": {}, \"ops\": [",
                p.total_ops, p.super_bp
            ));
            for (i, (name, count, is_super)) in p.ops.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"op\": \"{}\", \"count\": {count}, \"super\": {is_super}}}",
                    sweep::json_escape(name)
                ));
            }
            out.push_str("], \"hot\": [");
            for (i, h) in p.hot.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"chunk\": \"{}\", \"start\": {}, \"end\": {}, \"count\": {}}}",
                    sweep::json_escape(&h.chunk),
                    h.start,
                    h.end,
                    h.count
                ));
            }
            out.push_str("]}, ");
        }
    }
    if let Some(vw) = r.virtual_wall {
        out.push_str(&format!("\"virtual_wall_ns\": {}, ", vw.as_nanos()));
    }
    out.push_str(&format!("\"output_hash\": \"{:016x}\", ", sweep::output_hash(r)));
    out.push_str("\"outputs\": [");
    for (i, o) in r.outputs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('"');
        out.push_str(&sweep::json_escape(o));
        out.push('"');
    }
    out.push_str("], ");
    sweep::push_stats_json(&mut out, r);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, engine_for, SpmdError};

    #[test]
    fn status_mapping_is_pinned() {
        // The two easy ones to get wrong: Unsupported and Skipped must
        // map to 501 and 409 — a service must not lump them in with
        // client errors or failures.
        assert_eq!(http_status(&LolError::Unsupported("no cc".into())), 501);
        assert_eq!(http_status(&LolError::Skipped("resume".into())), 409);
        assert_eq!(http_status(&LolError::Parse("x".into())), 400);
        assert_eq!(http_status(&LolError::Sema("x".into())), 400);
        assert_eq!(http_status(&LolError::Compile("x".into())), 400);
        assert_eq!(http_status(&LolError::Config("x".into())), 400);
        let rt = LolError::Runtime(SpmdError { pe: 0, message: "RUN0001".into() });
        assert_eq!(http_status(&rt), 422);
        assert_eq!(error_code(&rt), "SRV0417");
        assert_eq!(error_code(&LolError::Unsupported("x".into())), "SRV0415");
        assert_eq!(error_code(&LolError::Skipped("x".into())), "SRV0416");
    }

    #[test]
    fn quotas_admit_caps_pes_and_clamps_timeout() {
        let q = Quotas { max_pes: 8, max_wall: Duration::from_secs(2), ..Quotas::default() };
        let ok = q.admit(&RunConfig::new(8).timeout(Duration::from_secs(60))).unwrap();
        assert_eq!(ok.timeout, Duration::from_secs(2), "timeout clamps to the quota");
        let ok = q.admit(&RunConfig::new(2).timeout(Duration::from_millis(100))).unwrap();
        assert_eq!(ok.timeout, Duration::from_millis(100), "tighter timeouts survive");
        match q.admit(&RunConfig::new(9)) {
            Err(v @ QuotaViolation::PeCap { want: 9, cap: 8 }) => {
                assert_eq!(v.code(), "SRV0201");
                assert_eq!(v.status(), 422);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn quotas_admit_many_counts_configs() {
        let q = Quotas { max_configs: 2, ..Quotas::default() };
        let configs: Vec<RunConfig> = (1..=3).map(RunConfig::new).collect();
        match q.admit_many(&configs) {
            Err(v @ QuotaViolation::ConfigCap { want: 3, cap: 2 }) => {
                assert_eq!(v.code(), "SRV0202")
            }
            other => panic!("{other:?}"),
        }
        assert!(q.admit_many(&configs[..2]).is_ok());
    }

    #[test]
    fn quotas_check_report_caps_simulated_walls() {
        let artifact = compile(crate::corpus::RING_EXAMPLE).unwrap();
        // 1s/hop × a ring of puts: the sim reports a >1s makespan.
        let cfg = RunConfig::new(4)
            .backend(Backend::Sim)
            .latency(crate::LatencyModel::Uniform { remote_ns: 1_000_000_000 });
        let r = engine_for(Backend::Sim).run(&artifact, &cfg).unwrap();
        let tight = Quotas { max_virtual_ns: 1_000_000, ..Quotas::default() };
        match tight.check_report(&r) {
            Err(v @ QuotaViolation::VirtualWallCap { .. }) => assert_eq!(v.code(), "SRV0203"),
            other => panic!("{other:?}"),
        }
        assert!(Quotas::default().check_report(&r).is_ok());
        // Threaded wall-clock runs carry no simulated wall to cap.
        let wall = engine_for(Backend::Interp).run(&artifact, &RunConfig::new(2)).unwrap();
        assert!(tight.check_report(&wall).is_ok());
    }

    #[test]
    fn run_report_json_is_stable_and_carries_outputs() {
        let artifact = compile(crate::corpus::HELLO_PARALLEL).unwrap();
        let cfg = RunConfig::new(2).backend(Backend::Vm);
        let a = engine_for(Backend::Vm).run(&artifact, &cfg).unwrap();
        let b = engine_for(Backend::Vm).run(&artifact, &cfg).unwrap();
        let json = run_report_json(&a, false);
        assert_eq!(json, run_report_json(&b, false), "stable form must be byte-reproducible");
        assert!(json.contains("\"backend\": \"vm\""));
        assert!(json.contains("\"ok\": true"));
        assert!(json.contains("\"outputs\": [\"HAI ITZ 0 OF 2\\n\", \"HAI ITZ 1 OF 2\\n\"]"));
        assert!(json.contains("\"output_hash\""));
        assert!(!json.contains("wall_ns"), "stable form carries no host timing: {json}");
        let timed = run_report_json(&a, true);
        assert!(timed.contains("\"wall_ns\"") && timed.contains("\"host_wall_ns\""));
        // Balanced-brackets sanity, like the sweep JSON tests.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
