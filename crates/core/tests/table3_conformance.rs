//! Experiment T3 — Table III conformance: the additional math/random
//! extensions (`WHATEVR`, `WHATEVAR`, `SQUAR OF`, `UNSQUAR OF`,
//! `FLIP OF`), including distribution checks on the random sources.

use lolcode::{run_source, Backend, RunConfig};
use std::time::Duration;

fn cfg(n: usize) -> RunConfig {
    RunConfig::new(n).timeout(Duration::from_secs(20))
}

fn both1(src: &str) -> String {
    let a = run_source(src, cfg(1).seed(2)).expect("interp").pop().unwrap();
    let b = run_source(src, cfg(1).seed(2).backend(Backend::Vm)).expect("vm").pop().unwrap();
    assert_eq!(a, b);
    a
}

#[test]
fn row1_whatevr_random_integer() {
    // rand() analog: non-negative, below 2^31, varies.
    let src = "HAI 1.2\n\
        IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 100\n\
        I HAS A r ITZ WHATEVR\n\
        BOTH OF NOT SMALLR r AN 0 AN SMALLR r AN 2147483648, O RLY?\n\
        NO WAI\nVISIBLE \"OUT OF RANGE\"\nOIC\n\
        IM OUTTA YR l\nVISIBLE \"done\"\nKTHXBYE";
    assert_eq!(both1(src), "done\n");
}

#[test]
fn whatevr_values_vary() {
    let src = "HAI 1.2\nVISIBLE WHATEVR\nVISIBLE WHATEVR\nVISIBLE WHATEVR\nKTHXBYE";
    let out = both1(src);
    let vals: Vec<&str> = out.lines().collect();
    assert_eq!(vals.len(), 3);
    assert!(!(vals[0] == vals[1] && vals[1] == vals[2]), "rand() stuck: {vals:?}");
}

#[test]
fn row2_whatevar_random_float_in_unit_interval() {
    let src = "HAI 1.2\n\
        IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 200\n\
        I HAS A f ITZ WHATEVAR\n\
        BOTH OF NOT SMALLR f AN 0.0 AN SMALLR f AN 1.0, O RLY?\n\
        NO WAI\nVISIBLE \"OUT OF RANGE\"\nOIC\n\
        IM OUTTA YR l\nVISIBLE \"done\"\nKTHXBYE";
    assert_eq!(both1(src), "done\n");
}

#[test]
fn whatevar_mean_is_near_half() {
    // Statistical sanity: mean of 1000 draws ≈ 0.5 (randf analog).
    let src = "HAI 1.2\nI HAS A acc ITZ SRSLY A NUMBAR AN ITZ 0.0\n\
        IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 1000\n\
        acc R SUM OF acc AN WHATEVAR\nIM OUTTA YR l\n\
        VISIBLE QUOSHUNT OF acc AN 1000.0\nKTHXBYE";
    let out = both1(src);
    let mean: f64 = out.trim().parse().unwrap();
    assert!((mean - 0.5).abs() < 0.05, "mean {mean} too far from 0.5");
}

#[test]
fn row3_squar_of() {
    assert_eq!(both1("HAI 1.2\nVISIBLE SQUAR OF 12\nKTHXBYE"), "144\n");
    assert_eq!(both1("HAI 1.2\nVISIBLE SQUAR OF 1.5\nKTHXBYE"), "2.25\n");
    assert_eq!(both1("HAI 1.2\nVISIBLE SQUAR OF -3\nKTHXBYE"), "9\n");
}

#[test]
fn row4_unsquar_of() {
    assert_eq!(both1("HAI 1.2\nVISIBLE UNSQUAR OF 144\nKTHXBYE"), "12.00\n");
    assert_eq!(both1("HAI 1.2\nVISIBLE UNSQUAR OF 2\nKTHXBYE"), "1.41\n");
}

#[test]
fn row5_flip_of() {
    assert_eq!(both1("HAI 1.2\nVISIBLE FLIP OF 4\nKTHXBYE"), "0.25\n");
    assert_eq!(both1("HAI 1.2\nVISIBLE FLIP OF 0.5\nKTHXBYE"), "2.00\n");
}

#[test]
fn nbody_inverse_distance_idiom() {
    // The composition the paper built Table III for:
    // FLIP OF UNSQUAR OF SUM OF dx AN dy with dx=9, dy=16 → 1/5.
    assert_eq!(both1("HAI 1.2\nVISIBLE FLIP OF UNSQUAR OF SUM OF 9 AN 16\nKTHXBYE"), "0.20\n");
}

#[test]
fn per_pe_streams_are_decorrelated() {
    // Different PEs draw different sequences (seeded per PE).
    let src = "HAI 1.2\nVISIBLE WHATEVR\nKTHXBYE";
    let outs = run_source(src, cfg(8).seed(4)).unwrap();
    let distinct: std::collections::HashSet<&String> = outs.iter().collect();
    assert!(distinct.len() >= 6, "PE streams too correlated: {outs:?}");
}

#[test]
fn seeds_reproduce_runs() {
    let src = "HAI 1.2\nVISIBLE WHATEVR \" \" WHATEVAR\nKTHXBYE";
    let a = run_source(src, cfg(4).seed(99)).unwrap();
    let b = run_source(src, cfg(4).seed(99)).unwrap();
    assert_eq!(a, b, "same seed, same run (reproducible teaching demos)");
}

#[test]
fn conformance_matrix_summary() {
    const ROWS: usize = 5;
    println!("T3 conformance: {ROWS}/5 rows of Table III exercised");
    assert_eq!(ROWS, 5);
}
