//! Language torture: the awkward corners a teaching language gets
//! poked in. Every case runs on both backends (except `SRS`, which is
//! interpreter-only by design) and asserts exact output.

use lolcode::{run_source, Backend, LolError, RunConfig};
use std::time::Duration;

fn cfg() -> RunConfig {
    RunConfig::new(1).timeout(Duration::from_secs(30))
}

fn both(src: &str) -> String {
    let a = run_source(src, cfg()).expect("interp").pop().unwrap();
    let b = run_source(src, cfg().backend(Backend::Vm)).expect("vm").pop().unwrap();
    assert_eq!(a, b, "backend divergence on:\n{src}");
    a
}

fn prog(body: &str) -> String {
    format!("HAI 1.2\n{body}\nKTHXBYE")
}

#[test]
fn empty_program() {
    assert_eq!(both("HAI 1.2\nKTHXBYE"), "");
}

#[test]
fn ten_deep_nested_loops() {
    let mut src = String::new();
    for d in 0..10 {
        src.push_str(&format!("IM IN YR l{d} UPPIN YR i{d} TIL BOTH SAEM i{d} AN 2\n"));
    }
    src.push_str("VISIBLE \"x\"!\n");
    for d in (0..10).rev() {
        src.push_str(&format!("IM OUTTA YR l{d}\n"));
    }
    let out = both(&prog(&src));
    assert_eq!(out.len(), 1 << 10, "2^10 iterations of the innermost body");
}

#[test]
fn switch_falls_through_every_arm_into_default() {
    let out = both(&prog(
        "I HAS A x ITZ 1\nx, WTF?\nOMG 1\nVISIBLE \"a\"!\nOMG 2\nVISIBLE \"b\"!\nOMGWTF\nVISIBLE \"d\"!\nOIC\nVISIBLE \"\"",
    ));
    assert_eq!(out, "abd\n");
}

#[test]
fn switch_no_match_no_default_is_noop() {
    let out = both(&prog("I HAS A x ITZ 9\nx, WTF?\nOMG 1\nVISIBLE \"a\"\nOIC\nVISIBLE \"after\""));
    assert_eq!(out, "after\n");
}

#[test]
fn mebbe_chain_takes_first_true() {
    let out = both(&prog(
        "I HAS A x ITZ 3\n\
         BOTH SAEM x AN 0, O RLY?\nYA RLY\nVISIBLE 0\n\
         MEBBE BOTH SAEM x AN 1\nVISIBLE 1\n\
         MEBBE BOTH SAEM x AN 2\nVISIBLE 2\n\
         MEBBE BOTH SAEM x AN 3\nVISIBLE 3\n\
         MEBBE WIN\nVISIBLE \"win\"\n\
         NO WAI\nVISIBLE \"none\"\nOIC",
    ));
    assert_eq!(out, "3\n", "first matching MEBBE wins, later truths skipped");
}

#[test]
fn gtfo_in_switch_inside_loop_breaks_switch_only() {
    let out = both(&prog(
        "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 3\n\
         i, WTF?\nOMG 1\nVISIBLE \"one\"!\nGTFO\nOMGWTF\nVISIBLE \"x\"!\nOIC\n\
         IM OUTTA YR l\nVISIBLE \"\"",
    ));
    // i=0 -> default x, i=1 -> one (GTFO breaks switch), i=2 -> x.
    assert_eq!(out, "xonex\n");
}

#[test]
fn visible_does_not_touch_it() {
    let out = both(&prog(
        "BOTH SAEM 1 AN 1\nVISIBLE \"printing is innocent\"\nO RLY?\nYA RLY\nVISIBLE \"it survived\"\nOIC",
    ));
    assert!(out.contains("it survived"), "{out}");
}

#[test]
fn shadowing_restores_after_scope() {
    let out = both(&prog(
        "I HAS A x ITZ 1\n\
         IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 1\n\
         I HAS A x ITZ 99\nVISIBLE x\n\
         IM OUTTA YR l\n\
         VISIBLE x",
    ));
    assert_eq!(out, "99\n1\n");
}

#[test]
fn function_calls_function() {
    let out = both(
        "HAI 1.2\n\
         HOW IZ I dbl YR n\nFOUND YR PRODUKT OF n AN 2\nIF U SAY SO\n\
         HOW IZ I quad YR n\nFOUND YR I IZ dbl YR I IZ dbl YR n MKAY MKAY\nIF U SAY SO\n\
         VISIBLE I IZ quad YR 10 MKAY\nKTHXBYE",
    );
    assert_eq!(out, "40\n");
}

#[test]
fn recursion_near_the_limit_works() {
    let out = both(
        "HAI 1.2\n\
         HOW IZ I down YR n\n\
         BOTH SAEM n AN 0, O RLY?\nYA RLY\nFOUND YR 0\nOIC\n\
         FOUND YR SUM OF 1 AN I IZ down YR DIFF OF n AN 1 MKAY\n\
         IF U SAY SO\n\
         VISIBLE I IZ down YR 150 MKAY\nKTHXBYE",
    );
    assert_eq!(out, "150\n");
}

#[test]
fn recursion_past_the_limit_faults_on_both() {
    let src = "HAI 1.2\nHOW IZ I f YR n\nFOUND YR I IZ f YR n MKAY\nIF U SAY SO\nI IZ f YR 0 MKAY\nKTHXBYE";
    for backend in [Backend::Interp, Backend::Vm] {
        let e = run_source(src, cfg().backend(backend)).unwrap_err();
        match e {
            LolError::Runtime(e) => assert!(e.message.contains("RUN0130"), "{}", e.message),
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn nerfin_goes_negative() {
    let out = both(&prog(
        "IM IN YR l NERFIN YR i TIL BOTH SAEM i AN -3\nVISIBLE i!\nIM OUTTA YR l\nVISIBLE \"\"",
    ));
    assert_eq!(out, "0-1-2\n");
}

#[test]
fn biggr_of_is_max_but_bigger_is_comparison() {
    let out = both(&prog("VISIBLE BIGGR OF 3 AN 7\nVISIBLE BIGGER 3 AN 7"));
    assert_eq!(out, "7\nFAIL\n", "the paper's BIGGER is >, 1.2's BIGGR OF is max");
}

#[test]
fn troof_array_and_yarn_array() {
    let out = both(&prog(
        "I HAS A t ITZ SRSLY LOTZ A TROOFS AN THAR IZ 3\n\
         t'Z 1 R WIN\nVISIBLE t'Z 0 t'Z 1\n\
         I HAS A s ITZ SRSLY LOTZ A YARNS AN THAR IZ 2\n\
         s'Z 0 R \"HA\"\ns'Z 1 R \"I\"\nVISIBLE SMOOSH s'Z 0 AN s'Z 1 MKAY",
    ));
    assert_eq!(out, "FAILWIN\nHAI\n");
}

#[test]
fn whole_array_copy_local_to_local() {
    let out = both(&prog(
        "I HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4\n\
         I HAS A b ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4\n\
         a'Z 2 R 22\nb R a\na'Z 2 R 99\nVISIBLE b'Z 2",
    ));
    assert_eq!(out, "22\n", "copy is by value, not by reference");
}

#[test]
fn array_element_type_coercion() {
    // NUMBR array coerces stored floats (like the C backend's native
    // arrays would).
    let out =
        both(&prog("I HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 2\na'Z 0 R 3.9\nVISIBLE a'Z 0"));
    assert_eq!(out, "3\n");
}

#[test]
fn is_now_a_on_srsly_var_is_rejected() {
    // The static-typing extension means a SRSLY variable's type is part
    // of its compiled layout: retyping it is a semantic error (SEM0024)
    // rather than an interpreter/VM divergence.
    let src = prog("I HAS A x ITZ SRSLY A NUMBR AN ITZ 3\nx IS NOW A YARN\nVISIBLE x");
    let e = run_source(&src, cfg()).unwrap_err();
    match e {
        LolError::Sema(msg) => assert!(msg.contains("SEM0024"), "{msg}"),
        other => panic!("{other:?}"),
    }
    // Dynamic variables still retype freely, identically on both backends.
    let out = both(&prog(
        "I HAS A x ITZ \"3\"\nx IS NOW A NUMBR\nx R SUM OF x AN 1\nx IS NOW A YARN\nx R SMOOSH x AN \"!\" MKAY\nVISIBLE x",
    ));
    assert_eq!(out, "4!\n");
}

#[test]
fn smoosh_many_and_empty_visible() {
    let out = both(&prog("VISIBLE SMOOSH 1 AN 2 AN 3 AN 4 AN 5 AN 6 AN 7 AN 8 MKAY\nVISIBLE"));
    assert_eq!(out, "12345678\n\n");
}

#[test]
fn gimmeh_then_arithmetic() {
    let cfg_in = cfg().input(&["7"]);
    let a = run_source(&prog("I HAS A x\nGIMMEH x\nVISIBLE PRODUKT OF x AN 6"), cfg_in.clone())
        .unwrap()
        .pop()
        .unwrap();
    let b = run_source(
        &prog("I HAS A x\nGIMMEH x\nVISIBLE PRODUKT OF x AN 6"),
        cfg_in.backend(Backend::Vm),
    )
    .unwrap()
    .pop()
    .unwrap();
    assert_eq!(a, "42\n");
    assert_eq!(a, b);
}

#[test]
fn string_escapes_through_visible() {
    let out = both(&prog("VISIBLE \"tab:>pipe::quote:\" end:)next\""));
    assert_eq!(out, "tab\tpipe:quote\" end\nnext\n");
}

#[test]
fn it_works_inside_functions_independently() {
    let out = both(
        "HAI 1.2\n\
         SUM OF 1 AN 1\n\
         HOW IZ I f\nSUM OF 40 AN 2\nIF U SAY SO\n\
         I HAS A r ITZ I IZ f MKAY\n\
         VISIBLE r \" \" IT\n\
         KTHXBYE",
    );
    // Function's IT is 42 (returned); main's IT was last set by the
    // call expression statement... r is a declaration (doesn't set IT),
    // so main's IT is still 2 from `SUM OF 1 AN 1`.
    assert_eq!(out, "42 2\n");
}

#[test]
fn noob_comparisons_and_casts() {
    let out = both(&prog(
        "I HAS A n\nVISIBLE BOTH SAEM n AN NOOB\nVISIBLE MAEK n A TROOF\nVISIBLE DIFFRINT n AN 0",
    ));
    assert_eq!(out, "WIN\nFAIL\nWIN\n", "NOOB==NOOB, NOOB->FAIL, NOOB!=0");
}

#[test]
fn wrapping_arithmetic_is_defined() {
    let out = both(&prog("I HAS A big ITZ 9223372036854775807\nVISIBLE SUM OF big AN 1"));
    assert_eq!(out, "-9223372036854775808\n");
}

#[test]
fn srs_chains_interpreter_only() {
    let out = run_source(
        &prog(
            "I HAS A a ITZ \"b\"\nI HAS A b ITZ \"c\"\nI HAS A c ITZ 42\n\
             VISIBLE SRS SRS a",
        ),
        cfg(),
    )
    .unwrap()
    .pop()
    .unwrap();
    assert_eq!(out, "42\n", "SRS SRS a -> SRS b -> c -> 42");
}

#[test]
fn loop_guard_sees_loop_variable_updates() {
    let out = both(&prog(
        "I HAS A sum ITZ 0\n\
         IM IN YR l UPPIN YR i WILE SMALLR i AN 5\n\
         sum R SUM OF sum AN i\n\
         IM OUTTA YR l\nVISIBLE sum",
    ));
    assert_eq!(out, "10\n", "0+1+2+3+4");
}

#[test]
fn yarn_numeric_comparison_rules() {
    let out = both(&prog(
        "VISIBLE BOTH SAEM \"3\" AN 3\nVISIBLE BIGGER \"10\" AN 9\nVISIBLE SUM OF \"2.5\" AN \"2.5\"",
    ));
    // BOTH SAEM does not coerce YARN to NUMBR; arithmetic/comparison do.
    assert_eq!(out, "FAIL\nWIN\n5.00\n");
}
