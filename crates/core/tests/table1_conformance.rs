//! Experiment T1 — Table I conformance matrix.
//!
//! Every row of the paper's "Basic syntax for LOLCODE language" table
//! is exercised end-to-end (parse → sema → interpret → check output),
//! one test per row, on both execution backends where applicable.

use lolcode::{run_source, Backend, RunConfig};
use std::time::Duration;

fn cfg() -> RunConfig {
    RunConfig::new(1).timeout(Duration::from_secs(15))
}

/// Run on one PE with both backends; assert identical expected output.
fn expect(src: &str, want: &str) {
    let interp = run_source(src, cfg()).expect("interp run").pop().unwrap();
    assert_eq!(interp, want, "interp output for:\n{src}");
    let vm = run_source(src, cfg().backend(Backend::Vm)).expect("vm run").pop().unwrap();
    assert_eq!(vm, want, "vm output for:\n{src}");
}

fn expect_parse_ok(src: &str) {
    lolcode::parse_program(src).expect("should parse");
}

#[test]
fn row01_hai_begins_program() {
    // HAI [version]
    expect("HAI 1.2\nVISIBLE \"ok\"\nKTHXBYE", "ok\n");
    expect_parse_ok("HAI\nKTHXBYE");
}

#[test]
fn row02_kthxbye_terminates_program() {
    assert!(lolcode::parse_program("HAI 1.2\nVISIBLE 1").is_err(), "missing KTHXBYE");
    expect_parse_ok("HAI 1.2\nKTHXBYE");
}

#[test]
fn row03_btw_single_line_comment() {
    expect("HAI 1.2\nVISIBLE 1 BTW dis is ignored\nKTHXBYE", "1\n");
}

#[test]
fn row04_obtw_tldr_multiline_comment() {
    expect("HAI 1.2\nOBTW\nall of dis\nis ignored\nTLDR\nVISIBLE 2\nKTHXBYE", "2\n");
}

#[test]
fn row05_can_has_library() {
    // CAN HAS STDIO? — recorded includes, no-op semantics.
    let p = lolcode::parse_program(
        "HAI 1.2\nCAN HAS STDIO?\nCAN HAS STRING?\nCAN HAS SOCKS?\nCAN HAS STDLIB?\nKTHXBYE",
    )
    .unwrap();
    assert_eq!(p.includes.len(), 4);
}

#[test]
fn row06_visible_prints() {
    expect("HAI 1.2\nVISIBLE \"KITTEH\"\nKTHXBYE", "KITTEH\n");
}

#[test]
fn row07_gimmeh_reads() {
    let outs = run_source(
        "HAI 1.2\nI HAS A x\nGIMMEH x\nVISIBLE x\nKTHXBYE",
        cfg().input(&["CHEEZBURGER"]),
    )
    .unwrap();
    assert_eq!(outs[0], "CHEEZBURGER\n");
}

#[test]
fn row08_i_has_a_declares() {
    expect("HAI 1.2\nI HAS A x\nx R 9\nVISIBLE x\nKTHXBYE", "9\n");
}

#[test]
fn row09_i_has_a_itz_initializes() {
    expect("HAI 1.2\nI HAS A x ITZ 7\nVISIBLE x\nKTHXBYE", "7\n");
}

#[test]
fn row10_i_has_a_itz_a_typed() {
    expect("HAI 1.2\nI HAS A x ITZ A NUMBAR\nVISIBLE x\nKTHXBYE", "0.00\n");
}

#[test]
fn row11_r_assigns() {
    expect("HAI 1.2\nI HAS A x ITZ 1\nx R SUM OF x AN 41\nVISIBLE x\nKTHXBYE", "42\n");
}

#[test]
fn row12_operators() {
    // BOTH SAEM, DIFFRINT, BIGGER, SMALLR, SUM OF, PRODUKT OF,
    // QUOSHUNT OF, MOD OF (+ DIFF OF, used by the paper's own listing).
    expect(
        "HAI 1.2\n\
         VISIBLE BOTH SAEM 2 AN 2\n\
         VISIBLE DIFFRINT 2 AN 3\n\
         VISIBLE BIGGER 3 AN 2\n\
         VISIBLE SMALLR 2 AN 3\n\
         VISIBLE SUM OF 2 AN 3\n\
         VISIBLE DIFF OF 2 AN 3\n\
         VISIBLE PRODUKT OF 2 AN 3\n\
         VISIBLE QUOSHUNT OF 7 AN 2\n\
         VISIBLE MOD OF 7 AN 2\n\
         KTHXBYE",
        "WIN\nWIN\nWIN\nWIN\n5\n-1\n6\n3\n1\n",
    );
}

#[test]
fn row13_maek_casts_expression() {
    expect("HAI 1.2\nVISIBLE MAEK \"42\" A NUMBR\nVISIBLE MAEK 1 A TROOF\nKTHXBYE", "42\nWIN\n");
}

#[test]
fn row14_is_now_a_casts_variable() {
    expect("HAI 1.2\nI HAS A x ITZ \"3\"\nx IS NOW A NUMBR\nVISIBLE SUM OF x AN 1\nKTHXBYE", "4\n");
}

#[test]
fn row15_srs_interprets_string_as_identifier() {
    // Interpreter-only by design (DESIGN.md §3.11).
    let outs = run_source(
        "HAI 1.2\nI HAS A cat ITZ 9\nI HAS A name ITZ \"cat\"\nVISIBLE SRS name\nKTHXBYE",
        cfg(),
    )
    .unwrap();
    assert_eq!(outs[0], "9\n");
}

#[test]
fn row16_o_rly_if_else() {
    expect(
        "HAI 1.2\nBOTH SAEM 1 AN 2, O RLY?\nYA RLY\nVISIBLE \"y\"\nNO WAI\nVISIBLE \"n\"\nOIC\nKTHXBYE",
        "n\n",
    );
}

#[test]
fn row17_wtf_switch_with_gtfo_and_omgwtf() {
    expect(
        "HAI 1.2\nI HAS A x ITZ 2\nx, WTF?\nOMG 1\nVISIBLE \"1\"\nGTFO\nOMG 2\nVISIBLE \"2\"\nGTFO\nOMGWTF\nVISIBLE \"?\"\nOIC\nKTHXBYE",
        "2\n",
    );
}

#[test]
fn row18_im_in_yr_loop_constructs() {
    // UPPIN/TIL, NERFIN/WILE, GTFO break.
    expect(
        "HAI 1.2\nIM IN YR l UPPIN YR i TIL BOTH SAEM i AN 3\nVISIBLE i!\nIM OUTTA YR l\nVISIBLE \"\"\nKTHXBYE",
        "012\n",
    );
    expect(
        "HAI 1.2\nI HAS A n ITZ 2\nIM IN YR l NERFIN YR j WILE BIGGER n AN 0\nVISIBLE n!\nn R DIFF OF n AN 1\nIM OUTTA YR l\nVISIBLE \"\"\nKTHXBYE",
        "21\n",
    );
    expect("HAI 1.2\nIM IN YR l\nVISIBLE \"once\"\nGTFO\nIM OUTTA YR l\nKTHXBYE", "once\n");
}

#[test]
fn row19_triple_dot_continuation() {
    expect("HAI 1.2\nVISIBLE SUM OF 1 ...\n  AN 2\nKTHXBYE", "3\n");
}

#[test]
fn row20_comma_separates_statements() {
    expect("HAI 1.2\nVISIBLE 1, VISIBLE 2\nKTHXBYE", "1\n2\n");
}

#[test]
fn bonus_functions_how_iz_i() {
    // Table I's "equivalent of functions" (described in §III prose).
    expect(
        "HAI 1.2\nHOW IZ I twice YR v\nFOUND YR PRODUKT OF v AN 2\nIF U SAY SO\nVISIBLE I IZ twice YR 21 MKAY\nKTHXBYE",
        "42\n",
    );
}

#[test]
fn conformance_matrix_summary() {
    // The rows above cover all 20 Table I entries; this test is the
    // machine-checkable tally the harness prints for EXPERIMENTS.md.
    const ROWS: usize = 20;
    println!("T1 conformance: {ROWS}/20 rows of Table I exercised");
    assert_eq!(ROWS, 20);
}
