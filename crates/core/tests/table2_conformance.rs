//! Experiment T2 — Table II conformance matrix: the parallel and
//! distributed computing extensions, exercised on real multi-PE runs
//! with both backends.

use lolcode::{run_source, Backend, RunConfig};
use std::time::Duration;

fn cfg(n: usize) -> RunConfig {
    RunConfig::new(n).timeout(Duration::from_secs(20))
}

fn both(n: usize, src: &str) -> Vec<String> {
    let a = run_source(src, cfg(n).seed(1)).expect("interp");
    let b = run_source(src, cfg(n).seed(1).backend(Backend::Vm)).expect("vm");
    assert_eq!(a, b, "backends disagree on:\n{src}");
    a
}

#[test]
fn row01_mah_frenz_total_pes() {
    for n in [1, 2, 7] {
        let outs = both(n, "HAI 1.2\nVISIBLE MAH FRENZ\nKTHXBYE");
        for o in outs {
            assert_eq!(o, format!("{n}\n"));
        }
    }
}

#[test]
fn row02_me_identifies_pe() {
    let outs = both(5, "HAI 1.2\nVISIBLE ME\nKTHXBYE");
    for (i, o) in outs.iter().enumerate() {
        assert_eq!(o, &format!("{i}\n"));
    }
}

#[test]
fn row03_im_srsly_mesin_wif_blocking_lock() {
    // All PEs hammer PE 0's counter under the blocking lock: no lost
    // updates allowed.
    let n = 6;
    let src = "HAI 1.2\nWE HAS A x ITZ A NUMBR AN IM SHARIN IT\nHUGZ\n\
        IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 20\n\
        TXT MAH BFF 0 AN STUFF\n\
        IM SRSLY MESIN WIF UR x\nUR x R SUM OF UR x AN 1\nDUN MESIN WIF UR x\n\
        TTYL\nIM OUTTA YR l\nHUGZ\nVISIBLE x\nKTHXBYE";
    let outs = both(n, src);
    assert_eq!(outs[0], format!("{}\n", n * 20));
}

#[test]
fn row04_im_mesin_wif_o_rly_trylock() {
    // Non-blocking test: sets IT, usable with O RLY?.
    let src = "HAI 1.2\nWE HAS A x ITZ A NUMBR AN IM SHARIN IT\n\
        IM MESIN WIF x, O RLY?\nYA RLY\nVISIBLE \"GOT\"\nDUN MESIN WIF x\n\
        NO WAI\nVISIBLE \"NO\"\nOIC\nKTHXBYE";
    let outs = both(1, src);
    assert_eq!(outs[0], "GOT\n");
}

#[test]
fn row05_dun_mesin_wif_releases() {
    // Second acquire succeeds only because the first releases.
    let src = "HAI 1.2\nWE HAS A x ITZ A NUMBR AN IM SHARIN IT\n\
        IM SRSLY MESIN WIF x\nDUN MESIN WIF x\n\
        IM SRSLY MESIN WIF x\nDUN MESIN WIF x\nVISIBLE \"twice\"\nKTHXBYE";
    assert_eq!(both(1, src)[0], "twice\n");
}

#[test]
fn row06_hugz_collective_barrier() {
    // Figure 2 determinism: without HUGZ this value could be stale.
    let n = 6;
    let src = "HAI 1.2\nWE HAS A b ITZ SRSLY A NUMBR\n\
        I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n\
        TXT MAH BFF k, UR b R SUM OF ME AN 1\nHUGZ\nVISIBLE b\nKTHXBYE";
    for _ in 0..10 {
        let outs = both(n, src);
        for (me, o) in outs.iter().enumerate() {
            let left = (me + n - 1) % n;
            assert_eq!(o, &format!("{}\n", left + 1));
        }
    }
}

#[test]
fn row07_txt_mah_bff_single_statement() {
    let src = "HAI 1.2\nWE HAS A x ITZ SRSLY A NUMBR\nx R PRODUKT OF ME AN 5\nHUGZ\n\
        I HAS A y\nTXT MAH BFF 0, y R UR x\nVISIBLE y\nKTHXBYE";
    let outs = both(4, src);
    for o in outs {
        assert_eq!(o, "0\n");
    }
}

#[test]
fn row08_txt_mah_bff_an_stuff_block() {
    let src = "HAI 1.2\nWE HAS A x ITZ SRSLY A NUMBR\nWE HAS A y ITZ SRSLY A NUMBR\n\
        x R ME\ny R PRODUKT OF ME AN 10\nHUGZ\n\
        I HAS A a\nI HAS A b\n\
        TXT MAH BFF MOD OF SUM OF ME AN 1 AN MAH FRENZ AN STUFF\n\
        a R UR x\nb R UR y\nTTYL\n\
        VISIBLE SUM OF a AN b\nKTHXBYE";
    let n = 4;
    let outs = both(n, src);
    for (me, o) in outs.iter().enumerate() {
        let next = (me + 1) % n;
        assert_eq!(o, &format!("{}\n", next + next * 10));
    }
}

#[test]
fn row09_i_has_a_itz_srsly_a_static_type() {
    let src = "HAI 1.2\nI HAS A x ITZ SRSLY A NUMBR\nx R 3.9\nVISIBLE x\nKTHXBYE";
    assert_eq!(both(1, src)[0], "3\n", "SRSLY pins the static type");
}

#[test]
fn row10_we_has_a_symmetric_shared_scalar() {
    let src = "HAI 1.2\nWE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n\
        x R SUM OF ME AN 100\nHUGZ\nVISIBLE x\nKTHXBYE";
    let outs = both(3, src);
    for (me, o) in outs.iter().enumerate() {
        assert_eq!(o, &format!("{}\n", me + 100), "one instance per PE");
    }
}

#[test]
fn row11_we_has_a_lotz_a_symmetric_array() {
    let src = "HAI 1.2\nWE HAS A arr ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 100\n\
        arr'Z 99 R PRODUKT OF ME AN 2\nHUGZ\n\
        I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n\
        I HAS A got\nTXT MAH BFF k, got R UR arr'Z 99\nVISIBLE got\nKTHXBYE";
    let n = 3;
    let outs = both(n, src);
    for (me, o) in outs.iter().enumerate() {
        let next = (me + 1) % n;
        assert_eq!(o, &format!("{}\n", next * 2));
    }
}

#[test]
fn row12_ur_and_mah_locality_qualifiers() {
    // UR reads the BFF's instance, MAH the local one — in the same
    // statement (the paper's key semantic).
    let src = "HAI 1.2\nWE HAS A x ITZ SRSLY A NUMBR\nx R SUM OF ME AN 1\nHUGZ\n\
        I HAS A diff\n\
        TXT MAH BFF MOD OF SUM OF ME AN 1 AN MAH FRENZ, diff R DIFF OF UR x AN MAH x\n\
        VISIBLE diff\nKTHXBYE";
    let n = 4;
    let outs = both(n, src);
    for (me, o) in outs.iter().enumerate() {
        let next = (me + 1) % n;
        let want = (next as i64 + 1) - (me as i64 + 1);
        assert_eq!(o, &format!("{want}\n"));
    }
}

#[test]
fn row13_tick_z_array_indexing() {
    let src = "HAI 1.2\nI HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4\n\
        a'Z 0 R 10\na'Z SUM OF 1 AN 2 R 40\nVISIBLE SUM OF a'Z 0 AN a'Z 3\nKTHXBYE";
    assert_eq!(both(1, src)[0], "50\n", "index is a full expression");
}

#[test]
fn conformance_matrix_summary() {
    const ROWS: usize = 13;
    println!("T2 conformance: {ROWS}/13 rows of Table II exercised");
    assert_eq!(ROWS, 13);
}
