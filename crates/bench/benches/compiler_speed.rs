//! Front-end and backend throughput on the paper's n-body source —
//! the `lcc` pipeline cost (§II: "a standard C compiler is used to
//! compile the code" — here we measure everything up to that handoff).
//!
//! Stages: lex, parse, sema, bytecode compile, C emission, full
//! source→C pipeline. Throughput in source bytes/second.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

fn bench_pipeline(c: &mut Criterion) {
    let src = lolcode::corpus::nbody_paper();
    let bytes = src.len() as u64;

    let mut g = c.benchmark_group("lcc_pipeline");
    g.sample_size(30).measurement_time(Duration::from_secs(2));
    g.throughput(Throughput::Bytes(bytes));

    g.bench_function("lex", |b| {
        b.iter(|| black_box(lol_lexer::lex(black_box(&src))).tokens.len())
    });

    g.bench_function("parse", |b| {
        b.iter(|| {
            let out = lol_parser::parse(black_box(&src));
            assert!(!out.diags.has_errors());
            black_box(out.program)
        })
    });

    let program = lolcode::parse_program(&src).unwrap();
    g.bench_function("sema", |b| {
        b.iter(|| {
            let a = lol_sema::analyze(black_box(&program));
            assert!(a.is_ok());
            black_box(a.shared.total_words)
        })
    });

    let analysis = lol_sema::analyze(&program);
    g.bench_function("compile_bytecode", |b| {
        b.iter(|| {
            let m = lol_vm::compile(black_box(&program), black_box(&analysis)).unwrap();
            black_box(m.code_len())
        })
    });

    g.bench_function("emit_c", |b| {
        b.iter(|| {
            let c = lol_c_codegen::emit_c(black_box(&program), black_box(&analysis)).unwrap();
            black_box(c.len())
        })
    });

    g.bench_function("source_to_c_full", |b| {
        b.iter(|| black_box(lolcode::compile_to_c(black_box(&src)).unwrap().len()))
    });

    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
