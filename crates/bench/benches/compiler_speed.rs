//! Front-end and backend throughput on the paper's n-body source —
//! the `lcc` pipeline cost (§II: "a standard C compiler is used to
//! compile the code" — here we measure everything up to that handoff).
//!
//! Stages: lex, parse, sema, bytecode compile, C emission, full
//! source→C pipeline. Throughput in source bytes/second.
//!
//! The `amortization` group then measures what the compile-once/
//! run-many API buys: `one_shot_run_source` re-runs the whole front
//! end on every execution, `artifact_run` reuses one `Compiled`
//! artifact (only execution remains), and `artifact_run_many` drives a
//! whole sweep off that artifact through `Engine::run_many`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lolcode::{compile, engine_for, Backend, RunConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench_pipeline(c: &mut Criterion) {
    let src = lolcode::corpus::nbody_paper();
    let bytes = src.len() as u64;

    let mut g = c.benchmark_group("lcc_pipeline");
    g.sample_size(30).measurement_time(Duration::from_secs(2));
    g.throughput(Throughput::Bytes(bytes));

    g.bench_function("lex", |b| b.iter(|| black_box(lol_lexer::lex(black_box(&src))).tokens.len()));

    g.bench_function("parse", |b| {
        b.iter(|| {
            let out = lol_parser::parse(black_box(&src));
            assert!(!out.diags.has_errors());
            black_box(out.program)
        })
    });

    let program = lolcode::parse_program(&src).unwrap();
    g.bench_function("sema", |b| {
        b.iter(|| {
            let a = lol_sema::analyze(black_box(&program));
            assert!(a.is_ok());
            black_box(a.shared.total_words)
        })
    });

    let analysis = lol_sema::analyze(&program);
    g.bench_function("compile_bytecode", |b| {
        b.iter(|| {
            let m = lol_vm::compile(black_box(&program), black_box(&analysis)).unwrap();
            black_box(m.code_len())
        })
    });

    g.bench_function("emit_c", |b| {
        b.iter(|| {
            let c = lol_c_codegen::emit_c(black_box(&program), black_box(&analysis)).unwrap();
            black_box(c.len())
        })
    });

    g.bench_function("source_to_c_full", |b| {
        b.iter(|| black_box(lolcode::compile_to_c(black_box(&src)).unwrap().len()))
    });

    g.bench_function("compile_artifact", |b| {
        b.iter(|| black_box(compile(black_box(&src)).unwrap()))
    });

    g.finish();
}

/// Compile-once/run-many vs one-shot: same program, same executions.
fn bench_amortization(c: &mut Criterion) {
    // A front-end-heavy program with a short runtime, so the compile
    // share of a one-shot run is visible.
    let src = lolcode::corpus::nbody_source(2, 1);
    let cfg = RunConfig::new(1).backend(Backend::Vm).timeout(Duration::from_secs(60));
    let engine = engine_for(Backend::Vm);
    let artifact = compile(&src).expect("compile");
    let _ = artifact.vm_module().expect("lowering"); // pay lowering up front

    let mut g = c.benchmark_group("amortization");
    g.sample_size(20).measurement_time(Duration::from_secs(2));

    g.bench_function("one_shot_run_source", |b| {
        b.iter(|| lolcode::run_source(black_box(&src), cfg.clone()).expect("run"))
    });

    g.bench_function("artifact_run", |b| {
        b.iter(|| engine.run(black_box(&artifact), &cfg).expect("run").outputs)
    });

    let sweep: Vec<RunConfig> = (0..4).map(|s| cfg.clone().seed(s)).collect();
    g.bench_function("artifact_run_many_x4", |b| {
        b.iter(|| {
            engine
                .run_many(black_box(&artifact), &sweep)
                .into_iter()
                .map(|r| r.expect("run").outputs)
                .collect::<Vec<_>>()
        })
    });

    g.finish();
}

criterion_group!(benches, bench_pipeline, bench_amortization);
criterion_main!(benches);
