//! Experiment F2 + ablation A1 — `HUGZ` (collective barrier) cost.
//!
//! Figure 2's guarantee costs one barrier per data-movement phase; this
//! bench measures that cost as PE count grows, for both barrier
//! algorithms (centralized sense-reversing vs dissemination). Expected
//! shape: centralized degrades roughly linearly with contention,
//! dissemination grows ~logarithmically (it wins at higher PE counts).
//!
//! The ablation rides the sweep axis (`SweepSpec::barriers`) instead of
//! a hand-rolled loop: the same `barrier=central,dissem` matrix a
//! `lolrun --sweep` user writes is what gets timed, end to end through
//! an engine. A raw-substrate microbench of the same two algorithms
//! lives next to it for the no-interpreter-overhead number.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lol_shmem::{run_spmd, BarrierKind, ShmemConfig};
use lolcode::{compile, Compiled, RunConfig, SweepSpec};
use std::time::{Duration, Instant};

/// A barrier-heavy program: `iters` back-to-back `HUGZ` episodes.
fn barrier_storm(iters: usize) -> Compiled {
    compile(&format!(
        "HAI 1.2\n\
         IM IN YR l UPPIN YR i TIL BOTH SAEM i AN {iters}\n\
         HUGZ\n\
         IM OUTTA YR l\n\
         KTHXBYE"
    ))
    .expect("barrier storm compiles")
}

/// The ablation as a sweep axis: one spec per (algorithm, PE count)
/// cell, timed through `SweepSpec::run` on the VM engine (`jobs` is 1
/// by construction — a single config — so walls are uncontended).
fn bench_barrier_ablation_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("F2_barrier_ablation_sweep");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    let artifact = barrier_storm(50);
    for kind in BarrierKind::ALL {
        for n_pes in [2usize, 4, 8] {
            let spec = SweepSpec::over(
                RunConfig::new(n_pes)
                    .backend(lolcode::Backend::Vm)
                    .timeout(Duration::from_secs(60)),
            )
            .barriers([kind]);
            g.bench_with_input(BenchmarkId::new(&kind.to_string(), n_pes), &spec, |b, spec| {
                b.iter(|| {
                    let report = spec.run(&artifact);
                    assert!(report.all_ok(), "{}", report.speedup_table());
                    report.entries[0].result.as_ref().unwrap().wall
                })
            });
        }
    }
    g.finish();
}

/// Raw-substrate counterpart: the same two algorithms without any
/// language runtime in the way (the per-episode floor).
fn bench_barrier_substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("F2_barrier_substrate");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for kind in BarrierKind::ALL {
        for n_pes in [2usize, 8, 16] {
            g.bench_with_input(BenchmarkId::new(&kind.to_string(), n_pes), &n_pes, |b, &n| {
                b.iter_custom(|iters| {
                    let cfg = ShmemConfig::new(n).barrier(kind).timeout(Duration::from_secs(60));
                    let times = run_spmd(cfg, |pe| {
                        pe.barrier_all(); // line everyone up
                        let t0 = Instant::now();
                        for _ in 0..iters {
                            pe.barrier_all();
                        }
                        t0.elapsed()
                    })
                    .expect("barrier bench job failed");
                    // The slowest PE defines the episode length.
                    times.into_iter().max().unwrap()
                })
            });
        }
    }
    g.finish();
}

/// The Figure 2 composite: put to neighbour, barrier, read — the cost
/// of one communication phase.
fn bench_figure2_phase(c: &mut Criterion) {
    let mut g = c.benchmark_group("F2_put_barrier_read");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for n_pes in [4usize, 16] {
        g.bench_with_input(BenchmarkId::new("pes", n_pes), &n_pes, |b, &n| {
            b.iter_custom(|iters| {
                let cfg = ShmemConfig::new(n).timeout(Duration::from_secs(60));
                let times = run_spmd(cfg, |pe| {
                    let a = pe.shmalloc(1);
                    let b_addr = pe.shmalloc(1);
                    let next = (pe.id() + 1) % pe.n_pes();
                    pe.put_i64(a, pe.id(), pe.id() as i64 + 1);
                    pe.barrier_all();
                    let t0 = Instant::now();
                    let mut acc = 0i64;
                    for _ in 0..iters {
                        // TXT MAH BFF next, UR b R MAH a / HUGZ / read.
                        let mine = pe.get_i64(a, pe.id());
                        pe.put_i64(b_addr, next, mine);
                        pe.barrier_all();
                        acc = acc.wrapping_add(pe.get_i64(b_addr, pe.id()));
                    }
                    std::hint::black_box(acc);
                    t0.elapsed()
                })
                .expect("figure2 bench job failed");
                times.into_iter().max().unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_barrier_ablation_sweep,
    bench_barrier_substrate,
    bench_figure2_phase
);
criterion_main!(benches);
