//! Experiment F2 + ablation A1 — `HUGZ` (collective barrier) cost.
//!
//! Figure 2's guarantee costs one barrier per data-movement phase; this
//! bench measures that cost as PE count grows, for both barrier
//! algorithms (centralized sense-reversing vs dissemination). Expected
//! shape: centralized degrades roughly linearly with contention,
//! dissemination grows ~logarithmically (it wins at higher PE counts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lol_shmem::{run_spmd, BarrierKind, ShmemConfig};
use std::time::{Duration, Instant};

fn bench_barrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("F2_barrier");
    g.sample_size(10).measurement_time(Duration::from_secs(2));

    for kind in [BarrierKind::Centralized, BarrierKind::Dissemination] {
        for n_pes in [2usize, 4, 8, 16] {
            let name = match kind {
                BarrierKind::Centralized => "central",
                BarrierKind::Dissemination => "dissemination",
            };
            g.bench_with_input(BenchmarkId::new(name, n_pes), &n_pes, |b, &n| {
                b.iter_custom(|iters| {
                    let cfg = ShmemConfig::new(n).barrier(kind).timeout(Duration::from_secs(60));
                    let times = run_spmd(cfg, |pe| {
                        pe.barrier_all(); // line everyone up
                        let t0 = Instant::now();
                        for _ in 0..iters {
                            pe.barrier_all();
                        }
                        t0.elapsed()
                    })
                    .expect("barrier bench job failed");
                    // The slowest PE defines the episode length.
                    times.into_iter().max().unwrap()
                })
            });
        }
    }
    g.finish();
}

/// The Figure 2 composite: put to neighbour, barrier, read — the cost
/// of one communication phase.
fn bench_figure2_phase(c: &mut Criterion) {
    let mut g = c.benchmark_group("F2_put_barrier_read");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for n_pes in [4usize, 16] {
        g.bench_with_input(BenchmarkId::new("pes", n_pes), &n_pes, |b, &n| {
            b.iter_custom(|iters| {
                let cfg = ShmemConfig::new(n).timeout(Duration::from_secs(60));
                let times = run_spmd(cfg, |pe| {
                    let a = pe.shmalloc(1);
                    let b_addr = pe.shmalloc(1);
                    let next = (pe.id() + 1) % pe.n_pes();
                    pe.put_i64(a, pe.id(), pe.id() as i64 + 1);
                    pe.barrier_all();
                    let t0 = Instant::now();
                    let mut acc = 0i64;
                    for _ in 0..iters {
                        // TXT MAH BFF next, UR b R MAH a / HUGZ / read.
                        let mine = pe.get_i64(a, pe.id());
                        pe.put_i64(b_addr, next, mine);
                        pe.barrier_all();
                        acc = acc.wrapping_add(pe.get_i64(b_addr, pe.id()));
                    }
                    std::hint::black_box(acc);
                    t0.elapsed()
                })
                .expect("figure2 bench job failed");
                times.into_iter().max().unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_barrier, bench_figure2_phase);
criterion_main!(benches);
