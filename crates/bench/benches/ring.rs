//! Experiment VI.A — the circular whole-array transfer
//! (`TXT MAH BFF next_pe, MAH mine R UR array`) as a function of array
//! size, at the language level (compile once, run many).
//!
//! Expected shape: time grows linearly with the array size once the
//! per-run SPMD launch cost is amortized; the substrate's block path
//! keeps the per-element cost flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lolcode::{compile, engine_for, Backend, RunConfig};
use std::time::Duration;

fn ring_source(words: usize) -> String {
    format!(
        "HAI 1.2\n\
         WE HAS A array ITZ SRSLY LOTZ A NUMBRS AN THAR IZ {words}\n\
         I HAS A mine ITZ SRSLY LOTZ A NUMBRS AN THAR IZ {words}\n\
         I HAS A next_pe ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n\
         IM IN YR fill UPPIN YR i TIL BOTH SAEM i AN {words}\n\
         array'Z i R SUM OF PRODUKT OF ME AN 1000000 AN i\n\
         IM OUTTA YR fill\n\
         HUGZ\n\
         TXT MAH BFF next_pe, MAH mine R UR array\n\
         KTHXBYE"
    )
}

fn bench_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("VI_A_ring_copy");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    let n_pes = 4;
    for words in [32usize, 256, 2048] {
        // One artifact per size; both engines run it.
        let artifact = compile(&ring_source(words)).expect("compile");
        let cfg =
            RunConfig::new(n_pes).heap_words(words.max(1024) * 2).timeout(Duration::from_secs(60));
        g.throughput(Throughput::Bytes((words * 8) as u64));
        for backend in [Backend::Interp, Backend::Vm] {
            let engine = engine_for(backend);
            let name = match backend {
                Backend::Interp => "interp_words",
                Backend::Vm => "vm_words",
                other => unreachable!("ring bench sweeps interp/vm only, got {other}"),
            };
            g.bench_with_input(BenchmarkId::new(name, words), &words, |b, _| {
                b.iter(|| engine.run(&artifact, &cfg).expect("ring run failed").outputs)
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_ring);
criterion_main!(benches);
