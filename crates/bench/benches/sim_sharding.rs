//! Discrete-event scheduler ablation: sequential (`sim_jobs = 1`) vs
//! sharded (`sim_jobs = 4`) walls on a barrier-heavy stencil as PE
//! count grows.
//!
//! Expected shape: at small PE counts the two are equal (the auto
//! policy would pick sequential there for a reason); as the per-phase
//! work grows the sharded scheduler's wall drops toward
//! `sequential / workers` on a multi-core box and stays at parity on
//! a single core. Outputs are byte-identical either way — this bench
//! measures the *simulator's* speed, the simulated makespan never
//! changes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lolcode::{compile, corpus, engine_for, Backend, ClockMode, RunConfig};
use std::time::Duration;

fn bench_sim_sharding(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_sharding");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let artifact = compile(&corpus::heat2d_source(4, 8, 5)).expect("compile");
    let engine = engine_for(Backend::Sim);
    for n_pes in [1024usize, 4096, 16384] {
        for jobs in [1usize, 4] {
            let cfg = RunConfig::new(n_pes)
                .clock(ClockMode::Virtual)
                .sim_jobs(jobs)
                .timeout(Duration::from_secs(300));
            let name = if jobs == 1 { "sequential" } else { "jobs4" };
            g.bench_with_input(BenchmarkId::new(name, n_pes), &n_pes, |b, _| {
                b.iter(|| engine.run(&artifact, &cfg).expect("sim run failed").wall)
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_sim_sharding);
criterion_main!(benches);
