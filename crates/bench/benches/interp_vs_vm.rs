//! Experiment §II.B — "using a compiler for LOLCODE is more flexible
//! and efficient than an interpreter".
//!
//! The paper's compiler emits C; our measurable compiled path is the
//! bytecode VM. Same programs, same substrate, one PE (pure execution
//! cost, no communication): the VM should win by a factor on
//! compute-bound kernels because name/locality resolution happened at
//! compile time.
//!
//! The backend matrix comes from [`SweepSpec`]: one sweep per kernel
//! cross-checks both engines against each other up front (replacing the
//! old hand-rolled diff loop), and its configs then drive the per-point
//! criterion measurements.

use criterion::{criterion_group, criterion_main, Criterion};
use lolcode::{compile, engine_for, Backend, RunConfig, SweepSpec};
use std::time::Duration;

struct Kernel {
    name: &'static str,
    src: String,
}

fn kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "scalar_arith_10k",
            src: "HAI 1.2\nI HAS A acc ITZ SRSLY A NUMBR AN ITZ 0\n\
                  IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 10000\n\
                  acc R SUM OF acc AN MOD OF PRODUKT OF i AN 7 AN 13\n\
                  IM OUTTA YR l\nVISIBLE acc\nKTHXBYE"
                .to_string(),
        },
        Kernel {
            name: "array_stencil_1k",
            src: "HAI 1.2\nI HAS A a ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 1000\n\
                  IM IN YR f UPPIN YR i TIL BOTH SAEM i AN 1000\n\
                  a'Z i R SUM OF i AN 0.5\nIM OUTTA YR f\n\
                  I HAS A s ITZ SRSLY A NUMBAR AN ITZ 0.0\n\
                  IM IN YR g UPPIN YR i TIL BOTH SAEM i AN 998\n\
                  s R SUM OF s AN DIFF OF a'Z SUM OF i AN 2 AN a'Z i\n\
                  IM OUTTA YR g\nVISIBLE s\nKTHXBYE"
                .to_string(),
        },
        Kernel {
            name: "fib_recursion",
            src: "HAI 1.2\nHOW IZ I fib YR n\nSMALLR n AN 2, O RLY?\nYA RLY\nFOUND YR n\nOIC\n\
                  FOUND YR SUM OF I IZ fib YR DIFF OF n AN 1 MKAY AN I IZ fib YR DIFF OF n AN 2 MKAY\n\
                  IF U SAY SO\nVISIBLE I IZ fib YR 17 MKAY\nKTHXBYE"
                .to_string(),
        },
        Kernel {
            name: "nbody_1pe",
            src: lolcode::corpus::nbody_source(16, 2),
        },
    ]
}

fn bench_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("II_B_interp_vs_vm");
    g.sample_size(10).measurement_time(Duration::from_secs(2));

    for k in kernels() {
        // One artifact per kernel; the sweep runs it on both engines
        // (the VM lowering is cached inside the artifact on first use)
        // and cross-checks their outputs before anything is timed.
        let artifact = compile(&k.src).expect("compile");
        let spec = SweepSpec::over(RunConfig::new(1).timeout(Duration::from_secs(120)))
            .backends([Backend::Interp, Backend::Vm]);
        let check = spec.run(&artifact);
        assert!(check.all_ok(), "kernel {} failed:\n{}", k.name, check.speedup_table());
        let outs: Vec<_> =
            check.entries.iter().map(|e| e.result.as_ref().unwrap().outputs.clone()).collect();
        assert_eq!(outs[0], outs[1], "backend divergence on {}", k.name);

        // The same spec's configs drive the per-point measurements.
        for cfg in spec.configs() {
            let engine = engine_for(cfg.backend);
            g.bench_function(format!("{}/{}", cfg.backend, k.name), |bch| {
                bch.iter(|| engine.run(&artifact, &cfg).expect("run failed").outputs)
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
