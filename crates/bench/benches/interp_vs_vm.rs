//! Experiment §II.B — "using a compiler for LOLCODE is more flexible
//! and efficient than an interpreter".
//!
//! The paper's compiler emits C; our measurable compiled path is the
//! bytecode VM. Same programs, same substrate, one PE (pure execution
//! cost, no communication): the VM should win by a factor on
//! compute-bound kernels because name/locality resolution happened at
//! compile time.

use criterion::{criterion_group, criterion_main, Criterion};
use lolcode::{compile, engine_for, Backend, RunConfig};
use std::time::Duration;

struct Kernel {
    name: &'static str,
    src: String,
}

fn kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "scalar_arith_10k",
            src: "HAI 1.2\nI HAS A acc ITZ SRSLY A NUMBR AN ITZ 0\n\
                  IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 10000\n\
                  acc R SUM OF acc AN MOD OF PRODUKT OF i AN 7 AN 13\n\
                  IM OUTTA YR l\nVISIBLE acc\nKTHXBYE"
                .to_string(),
        },
        Kernel {
            name: "array_stencil_1k",
            src: "HAI 1.2\nI HAS A a ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 1000\n\
                  IM IN YR f UPPIN YR i TIL BOTH SAEM i AN 1000\n\
                  a'Z i R SUM OF i AN 0.5\nIM OUTTA YR f\n\
                  I HAS A s ITZ SRSLY A NUMBAR AN ITZ 0.0\n\
                  IM IN YR g UPPIN YR i TIL BOTH SAEM i AN 998\n\
                  s R SUM OF s AN DIFF OF a'Z SUM OF i AN 2 AN a'Z i\n\
                  IM OUTTA YR g\nVISIBLE s\nKTHXBYE"
                .to_string(),
        },
        Kernel {
            name: "fib_recursion",
            src: "HAI 1.2\nHOW IZ I fib YR n\nSMALLR n AN 2, O RLY?\nYA RLY\nFOUND YR n\nOIC\n\
                  FOUND YR SUM OF I IZ fib YR DIFF OF n AN 1 MKAY AN I IZ fib YR DIFF OF n AN 2 MKAY\n\
                  IF U SAY SO\nVISIBLE I IZ fib YR 17 MKAY\nKTHXBYE"
                .to_string(),
        },
        Kernel {
            name: "nbody_1pe",
            src: lolcode::corpus::nbody_source(16, 2),
        },
    ]
}

fn bench_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("II_B_interp_vs_vm");
    g.sample_size(10).measurement_time(Duration::from_secs(2));

    for k in kernels() {
        // One artifact per kernel; both engines execute it (the VM
        // lowering is cached inside the artifact on first use).
        let artifact = compile(&k.src).expect("compile");
        let cfg = RunConfig::new(1).timeout(Duration::from_secs(120));

        // Cross-check once: identical output.
        let a = engine_for(Backend::Interp).run(&artifact, &cfg).unwrap();
        let b = engine_for(Backend::Vm).run(&artifact, &cfg).unwrap();
        assert_eq!(a.outputs, b.outputs, "backend divergence on {}", k.name);

        for backend in [Backend::Interp, Backend::Vm] {
            let engine = engine_for(backend);
            let label = match backend {
                Backend::Interp => "interp",
                Backend::Vm => "vm",
            };
            g.bench_function(format!("{label}/{}", k.name), |bch| {
                bch.iter(|| engine.run(&artifact, &cfg).expect("run failed").outputs)
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
