//! Experiment VI.B + ablation A2 — lock throughput under contention.
//!
//! All PEs hammer PE 0's lock cell doing the Section VI.B
//! read-modify-write. Compares the two lock algorithms: SpinCas
//! (unfair, cheap uncontended) vs Ticket (FIFO-fair, slightly more
//! state). Expected shape: similar at low PE counts; ticket's fairness
//! costs a little throughput but bounds waiting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lol_shmem::{run_spmd, LockKind, ShmemConfig};
use std::time::{Duration, Instant};

fn bench_contended_increment(c: &mut Criterion) {
    let mut g = c.benchmark_group("VI_B_lock_increment");
    g.sample_size(10).measurement_time(Duration::from_secs(2));

    for kind in [LockKind::SpinCas, LockKind::Ticket] {
        for n_pes in [1usize, 2, 4, 8] {
            let name = match kind {
                LockKind::SpinCas => "spincas",
                LockKind::Ticket => "ticket",
            };
            g.bench_with_input(BenchmarkId::new(name, n_pes), &n_pes, |b, &n| {
                b.iter_custom(|iters| {
                    let cfg = ShmemConfig::new(n).lock(kind).timeout(Duration::from_secs(60));
                    let times = run_spmd(cfg, |pe| {
                        let lk = pe.shmalloc_lock();
                        let x = pe.shmalloc(1);
                        pe.barrier_all();
                        let t0 = Instant::now();
                        for _ in 0..iters {
                            pe.lock(lk, 0);
                            let v = pe.get_i64(x, 0);
                            pe.put_i64(x, 0, v + 1);
                            pe.unlock(lk, 0);
                        }
                        let dt = t0.elapsed();
                        pe.barrier_all();
                        // Sanity: nothing lost.
                        assert_eq!(pe.get_i64(x, 0), (iters as i64) * pe.n_pes() as i64);
                        dt
                    })
                    .expect("lock bench job failed");
                    times.into_iter().max().unwrap()
                })
            });
        }
    }
    g.finish();
}

/// The Section V trylock-then-lock pattern vs plain blocking lock.
fn bench_trylock_pattern(c: &mut Criterion) {
    let mut g = c.benchmark_group("V_trylock_pattern");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for (name, use_try) in [("blocking", false), ("try_then_lock", true)] {
        g.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let cfg = ShmemConfig::new(4).timeout(Duration::from_secs(60));
                let times = run_spmd(cfg, |pe| {
                    let lk = pe.shmalloc_lock();
                    let x = pe.shmalloc(1);
                    pe.barrier_all();
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        if use_try {
                            if !pe.try_lock(lk, 0) {
                                pe.lock(lk, 0);
                            }
                        } else {
                            pe.lock(lk, 0);
                        }
                        let v = pe.get_i64(x, 0);
                        pe.put_i64(x, 0, v + 1);
                        pe.unlock(lk, 0);
                    }
                    t0.elapsed()
                })
                .expect("trylock bench job failed");
                times.into_iter().max().unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_contended_increment, bench_trylock_pattern);
criterion_main!(benches);
