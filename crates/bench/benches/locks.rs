//! Experiment VI.B + ablation A2 — lock throughput under contention.
//!
//! All PEs hammer PE 0's lock cell doing the Section VI.B
//! read-modify-write. Compares the two lock algorithms: SpinCas
//! (unfair, cheap uncontended) vs Ticket (FIFO-fair, slightly more
//! state). Expected shape: similar at low PE counts; ticket's fairness
//! costs a little throughput but bounds waiting.
//!
//! The ablation rides the sweep axis (`SweepSpec::locks`) — the same
//! `lock=cas,ticket` matrix a `lolrun --sweep` user writes, timed end
//! to end through an engine — with a raw-substrate microbench beside
//! it for the no-interpreter-overhead floor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lol_shmem::{run_spmd, LockKind, ShmemConfig};
use lolcode::{compile, Compiled, RunConfig, SweepSpec};
use std::time::{Duration, Instant};

/// The Section VI.B pattern, iterated: every PE increments PE 0's
/// shared counter `iters` times under the implicit lock.
fn lock_storm(iters: usize) -> Compiled {
    compile(&format!(
        "HAI 1.2\n\
         WE HAS A x ITZ A NUMBR AN IM SHARIN IT\n\
         HUGZ\n\
         I HAS A k ITZ 0\n\
         IM IN YR l UPPIN YR i TIL BOTH SAEM i AN {iters}\n\
         TXT MAH BFF k AN STUFF\n\
         IM SRSLY MESIN WIF UR x\n\
         UR x R SUM OF UR x AN 1\n\
         DUN MESIN WIF UR x\n\
         TTYL\n\
         IM OUTTA YR l\n\
         HUGZ\n\
         KTHXBYE"
    ))
    .expect("lock storm compiles")
}

/// The ablation as a sweep axis: one spec per (algorithm, PE count)
/// cell, timed through `SweepSpec::run` on the VM engine.
fn bench_lock_ablation_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("VI_B_lock_ablation_sweep");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    let artifact = lock_storm(25);
    for kind in LockKind::ALL {
        for n_pes in [1usize, 2, 4, 8] {
            let spec = SweepSpec::over(
                RunConfig::new(n_pes)
                    .backend(lolcode::Backend::Vm)
                    .timeout(Duration::from_secs(60)),
            )
            .locks([kind]);
            g.bench_with_input(BenchmarkId::new(&kind.to_string(), n_pes), &spec, |b, spec| {
                b.iter(|| {
                    let report = spec.run(&artifact);
                    assert!(report.all_ok(), "{}", report.speedup_table());
                    report.entries[0].result.as_ref().unwrap().wall
                })
            });
        }
    }
    g.finish();
}

/// Raw-substrate counterpart: the contended increment without any
/// language runtime in the way.
fn bench_lock_substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("VI_B_lock_substrate");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for kind in LockKind::ALL {
        for n_pes in [1usize, 4, 8] {
            g.bench_with_input(BenchmarkId::new(&kind.to_string(), n_pes), &n_pes, |b, &n| {
                b.iter_custom(|iters| {
                    let cfg = ShmemConfig::new(n).lock(kind).timeout(Duration::from_secs(60));
                    let times = run_spmd(cfg, |pe| {
                        let lk = pe.shmalloc_lock();
                        let x = pe.shmalloc(1);
                        pe.barrier_all();
                        let t0 = Instant::now();
                        for _ in 0..iters {
                            pe.lock(lk, 0);
                            let v = pe.get_i64(x, 0);
                            pe.put_i64(x, 0, v + 1);
                            pe.unlock(lk, 0);
                        }
                        let dt = t0.elapsed();
                        pe.barrier_all();
                        // Sanity: nothing lost.
                        assert_eq!(pe.get_i64(x, 0), (iters as i64) * pe.n_pes() as i64);
                        dt
                    })
                    .expect("lock bench job failed");
                    times.into_iter().max().unwrap()
                })
            });
        }
    }
    g.finish();
}

/// The Section V trylock-then-lock pattern vs plain blocking lock.
fn bench_trylock_pattern(c: &mut Criterion) {
    let mut g = c.benchmark_group("V_trylock_pattern");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for (name, use_try) in [("blocking", false), ("try_then_lock", true)] {
        g.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let cfg = ShmemConfig::new(4).timeout(Duration::from_secs(60));
                let times = run_spmd(cfg, |pe| {
                    let lk = pe.shmalloc_lock();
                    let x = pe.shmalloc(1);
                    pe.barrier_all();
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        if use_try {
                            if !pe.try_lock(lk, 0) {
                                pe.lock(lk, 0);
                            }
                        } else {
                            pe.lock(lk, 0);
                        }
                        let v = pe.get_i64(x, 0);
                        pe.put_i64(x, 0, v + 1);
                        pe.unlock(lk, 0);
                    }
                    t0.elapsed()
                })
                .expect("trylock bench job failed");
                times.into_iter().max().unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lock_ablation_sweep, bench_lock_substrate, bench_trylock_pattern);
criterion_main!(benches);
