//! Experiment VI.D — the paper's 2D n-body, scaling with PE count.
//!
//! The paper demonstrates the same listing from a 16-core Parallella up
//! to a Cray XC40. Here each PE owns a fixed particle set (32 per PE in
//! the paper; 8 here to keep bench time sane), so growing the PE count
//! grows the problem (weak scaling) *and* the all-to-all remote-force
//! phase — expected shape: per-step time grows with PE count because
//! the remote phase is O(P·n²), and the compiled VM beats the
//! interpreter at every size by a stable factor.
//!
//! The config matrix comes from [`SweepSpec`] (one `Compiled` artifact,
//! backends × PE counts), driven point-by-point so each config gets its
//! own criterion measurement; a final group times the *whole* sweep
//! under different worker caps — the `--jobs` ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lolcode::{compile, engine_for, Backend, RunConfig, SweepSpec};
use std::time::Duration;

const PARTICLES_PER_PE: usize = 8;
const STEPS: usize = 2;

fn bench_nbody_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("VI_D_nbody_weak_scaling");
    g.sample_size(10).measurement_time(Duration::from_secs(3));

    let src = lolcode::corpus::nbody_source(PARTICLES_PER_PE, STEPS);
    let artifact = compile(&src).expect("compile");

    let spec = SweepSpec::over(RunConfig::new(1).timeout(Duration::from_secs(120)))
        .backends([Backend::Interp, Backend::Vm])
        .pes([1, 2, 4, 8, 16]);
    for cfg in spec.configs() {
        let engine = engine_for(cfg.backend);
        g.bench_with_input(
            BenchmarkId::new(&format!("{}_pes", cfg.backend), cfg.n_pes),
            &cfg.n_pes,
            |b, _| b.iter(|| engine.run(&artifact, &cfg).expect("nbody run failed").outputs),
        );
    }
    g.finish();
}

/// The "Cray" analog: one large run, VM only (the interpreter would
/// dominate bench time), with the flat-network latency model.
fn bench_nbody_large(c: &mut Criterion) {
    let mut g = c.benchmark_group("VI_D_nbody_large");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let artifact = compile(&lolcode::corpus::nbody_source(4, 1)).expect("compile");
    let engine = engine_for(Backend::Vm);
    for n_pes in [32usize, 64] {
        let cfg = RunConfig::new(n_pes).timeout(Duration::from_secs(120));
        g.bench_with_input(BenchmarkId::new("vm_pes", n_pes), &n_pes, |b, _| {
            b.iter(|| engine.run(&artifact, &cfg).expect("large nbody failed").outputs)
        });
    }
    g.finish();
}

/// The sweep scheduler's own ablation: the identical 8-config matrix
/// (2 backends × 2 PE counts × 2 seeds) executed end-to-end under
/// worker caps 1 and 4. On a multicore host the 4-worker sweep should
/// finish in a fraction of the serial wall time; the reports are
/// byte-identical either way (checked once before timing).
fn bench_sweep_jobs(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_jobs");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    let artifact = compile(&lolcode::corpus::nbody_source(6, 2)).expect("compile");
    let spec = SweepSpec::over(RunConfig::new(1).timeout(Duration::from_secs(120)))
        .backends([Backend::Interp, Backend::Vm])
        .pes([1, 2])
        .seeds([1, 2]);
    assert_eq!(spec.configs().len(), 8);
    let serial = spec.clone().jobs(1).run(&artifact);
    let racing = spec.clone().jobs(4).run(&artifact);
    assert!(serial.all_ok() && racing.all_ok());
    assert_eq!(serial.to_json_stable(), racing.to_json_stable(), "jobs changed the results");
    for jobs in [1usize, 4] {
        let spec = spec.clone().jobs(jobs);
        g.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, _| {
            b.iter(|| spec.run(&artifact).ok_count())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_nbody_scaling, bench_nbody_large, bench_sweep_jobs);
criterion_main!(benches);
