//! Experiment VI.D — the paper's 2D n-body, scaling with PE count.
//!
//! The paper demonstrates the same listing from a 16-core Parallella up
//! to a Cray XC40. Here each PE owns a fixed particle set (32 per PE in
//! the paper; 8 here to keep bench time sane), so growing the PE count
//! grows the problem (weak scaling) *and* the all-to-all remote-force
//! phase — expected shape: per-step time grows with PE count because
//! the remote phase is O(P·n²), and the compiled VM beats the
//! interpreter at every size by a stable factor.
//!
//! The whole sweep reuses one `Compiled` artifact per program — this is
//! exactly the `Engine::run_many` workload, driven point-by-point so
//! each PE count gets its own criterion measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lolcode::{compile, engine_for, Backend, RunConfig};
use std::time::Duration;

const PARTICLES_PER_PE: usize = 8;
const STEPS: usize = 2;

fn bench_nbody_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("VI_D_nbody_weak_scaling");
    g.sample_size(10).measurement_time(Duration::from_secs(3));

    let src = lolcode::corpus::nbody_source(PARTICLES_PER_PE, STEPS);
    let artifact = compile(&src).expect("compile");

    for n_pes in [1usize, 2, 4, 8, 16] {
        let cfg = RunConfig::new(n_pes).timeout(Duration::from_secs(120));
        for backend in [Backend::Interp, Backend::Vm] {
            let engine = engine_for(backend);
            let name = match backend {
                Backend::Interp => "interp_pes",
                Backend::Vm => "vm_pes",
            };
            g.bench_with_input(BenchmarkId::new(name, n_pes), &n_pes, |b, _| {
                b.iter(|| engine.run(&artifact, &cfg).expect("nbody run failed").outputs)
            });
        }
    }
    g.finish();
}

/// The "Cray" analog: one large run, VM only (the interpreter would
/// dominate bench time), with the flat-network latency model.
fn bench_nbody_large(c: &mut Criterion) {
    let mut g = c.benchmark_group("VI_D_nbody_large");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let artifact = compile(&lolcode::corpus::nbody_source(4, 1)).expect("compile");
    let engine = engine_for(Backend::Vm);
    for n_pes in [32usize, 64] {
        let cfg = RunConfig::new(n_pes).timeout(Duration::from_secs(120));
        g.bench_with_input(BenchmarkId::new("vm_pes", n_pes), &n_pes, |b, _| {
            b.iter(|| engine.run(&artifact, &cfg).expect("large nbody failed").outputs)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_nbody_scaling, bench_nbody_large);
criterion_main!(benches);
