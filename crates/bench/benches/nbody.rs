//! Experiment VI.D — the paper's 2D n-body, scaling with PE count.
//!
//! The paper demonstrates the same listing from a 16-core Parallella up
//! to a Cray XC40. Here each PE owns a fixed particle set (32 per PE in
//! the paper; 8 here to keep bench time sane), so growing the PE count
//! grows the problem (weak scaling) *and* the all-to-all remote-force
//! phase — expected shape: per-step time grows with PE count because
//! the remote phase is O(P·n²), and the compiled VM beats the
//! interpreter at every size by a stable factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lol_shmem::ShmemConfig;
use std::time::Duration;

const PARTICLES_PER_PE: usize = 8;
const STEPS: usize = 2;

fn bench_nbody_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("VI_D_nbody_weak_scaling");
    g.sample_size(10).measurement_time(Duration::from_secs(3));

    let src = lolcode::corpus::nbody_source(PARTICLES_PER_PE, STEPS);
    let program = lolcode::parse_program(&src).expect("parse");
    let analysis = lol_sema::analyze(&program);
    assert!(analysis.is_ok());
    let module = lol_vm::compile(&program, &analysis).expect("compile");

    for n_pes in [1usize, 2, 4, 8, 16] {
        g.bench_with_input(BenchmarkId::new("interp_pes", n_pes), &n_pes, |b, &n| {
            b.iter(|| {
                lol_interp::run_parallel(
                    &program,
                    &analysis,
                    ShmemConfig::new(n).timeout(Duration::from_secs(120)),
                )
                .expect("nbody interp failed")
            })
        });
        g.bench_with_input(BenchmarkId::new("vm_pes", n_pes), &n_pes, |b, &n| {
            b.iter(|| {
                lol_vm::run_parallel(
                    &module,
                    ShmemConfig::new(n).timeout(Duration::from_secs(120)),
                )
                .expect("nbody vm failed")
            })
        });
    }
    g.finish();
}

/// The "Cray" analog: one large run, VM only (the interpreter would
/// dominate bench time), with the flat-network latency model.
fn bench_nbody_large(c: &mut Criterion) {
    let mut g = c.benchmark_group("VI_D_nbody_large");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let src = lolcode::corpus::nbody_source(4, 1);
    let program = lolcode::parse_program(&src).expect("parse");
    let analysis = lol_sema::analyze(&program);
    let module = lol_vm::compile(&program, &analysis).expect("compile");
    for n_pes in [32usize, 64] {
        g.bench_with_input(BenchmarkId::new("vm_pes", n_pes), &n_pes, |b, &n| {
            b.iter(|| {
                lol_vm::run_parallel(
                    &module,
                    ShmemConfig::new(n).timeout(Duration::from_secs(120)),
                )
                .expect("large nbody failed")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_nbody_scaling, bench_nbody_large);
criterion_main!(benches);
