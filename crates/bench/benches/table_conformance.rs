//! Experiments T1/T2/T3 — regenerate the paper's three tables as
//! executable conformance matrices. Not a timing benchmark: a custom
//! harness (`harness = false`) that runs one probe program per table
//! row on both backends and prints the matrix EXPERIMENTS.md records.
//!
//! ```text
//! cargo bench -p lol-bench --bench table_conformance
//! ```

use lolcode::{run_source, Backend, RunConfig};
use std::time::{Duration, Instant};

struct Row {
    table: &'static str,
    row: &'static str,
    src: String,
    /// Expected PE 0 output (None = just has to run cleanly).
    want: Option<String>,
    n_pes: usize,
    /// Interpreter-only constructs (SRS) skip the VM pass.
    interp_only: bool,
}

fn row(table: &'static str, name: &'static str, src: &str, want: &str) -> Row {
    Row {
        table,
        row: name,
        src: format!("HAI 1.2\n{src}\nKTHXBYE"),
        want: Some(want.to_string()),
        n_pes: 1,
        interp_only: false,
    }
}

fn row_pes(table: &'static str, name: &'static str, n: usize, src: &str) -> Row {
    Row {
        table,
        row: name,
        src: format!("HAI 1.2\n{src}\nKTHXBYE"),
        want: None,
        n_pes: n,
        interp_only: false,
    }
}

fn matrix() -> Vec<Row> {
    let mut rows = vec![
        // ---- Table I ----
        row("I", "HAI/KTHXBYE", "VISIBLE \"ok\"", "ok\n"),
        row("I", "BTW comment", "VISIBLE 1 BTW nope", "1\n"),
        row("I", "OBTW..TLDR", "OBTW\nx\nTLDR\nVISIBLE 2", "2\n"),
        row("I", "CAN HAS lib?", "CAN HAS STDIO?\nVISIBLE 3", "3\n"),
        row("I", "VISIBLE", "VISIBLE \"KITTEH\"", "KITTEH\n"),
        row("I", "I HAS A", "I HAS A x\nx R 9\nVISIBLE x", "9\n"),
        row("I", "ITZ init", "I HAS A x ITZ 7\nVISIBLE x", "7\n"),
        row("I", "ITZ A type", "I HAS A x ITZ A NUMBAR\nVISIBLE x", "0.00\n"),
        row("I", "R assign", "I HAS A x ITZ 1\nx R 42\nVISIBLE x", "42\n"),
        row(
            "I",
            "operators",
            "VISIBLE SUM OF 2 AN 3\nVISIBLE DIFF OF 2 AN 3\nVISIBLE PRODUKT OF 2 AN 3\nVISIBLE QUOSHUNT OF 7 AN 2\nVISIBLE MOD OF 7 AN 2\nVISIBLE BOTH SAEM 1 AN 1\nVISIBLE DIFFRINT 1 AN 2\nVISIBLE BIGGER 2 AN 1\nVISIBLE SMALLR 1 AN 2",
            "5\n-1\n6\n3\n1\nWIN\nWIN\nWIN\nWIN\n",
        ),
        row("I", "MAEK cast", "VISIBLE MAEK \"42\" A NUMBR", "42\n"),
        row("I", "IS NOW A", "I HAS A x ITZ \"3\"\nx IS NOW A NUMBR\nVISIBLE SUM OF x AN 1", "4\n"),
        row("I", "O RLY?", "BOTH SAEM 1 AN 2, O RLY?\nYA RLY\nVISIBLE \"y\"\nNO WAI\nVISIBLE \"n\"\nOIC", "n\n"),
        row("I", "WTF?/OMG/GTFO", "I HAS A x ITZ 2\nx, WTF?\nOMG 1\nVISIBLE 1\nGTFO\nOMG 2\nVISIBLE 2\nGTFO\nOMGWTF\nVISIBLE 0\nOIC", "2\n"),
        row("I", "IM IN YR loop", "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 3\nVISIBLE i!\nIM OUTTA YR l\nVISIBLE \"\"", "012\n"),
        row("I", "... continuation", "VISIBLE SUM OF 1 ...\n  AN 2", "3\n"),
        row("I", "comma separator", "VISIBLE 1, VISIBLE 2", "1\n2\n"),
        row("I", "HOW IZ I / I IZ", "HOW IZ I f YR a\nFOUND YR SUM OF a AN 1\nIF U SAY SO\nVISIBLE I IZ f YR 41 MKAY", "42\n"),
        // ---- Table II ----
        row_pes("II", "MAH FRENZ", 4, "VISIBLE MAH FRENZ"),
        row_pes("II", "ME", 4, "VISIBLE ME"),
        row_pes(
            "II",
            "IM SRSLY MESIN WIF",
            4,
            "WE HAS A x ITZ A NUMBR AN IM SHARIN IT\nHUGZ\nTXT MAH BFF 0 AN STUFF\nIM SRSLY MESIN WIF UR x\nUR x R SUM OF UR x AN 1\nDUN MESIN WIF UR x\nTTYL\nHUGZ\nVISIBLE x",
        ),
        row(
            "II",
            "IM MESIN WIF, O RLY?",
            "WE HAS A x ITZ A NUMBR AN IM SHARIN IT\nIM MESIN WIF x, O RLY?\nYA RLY\nVISIBLE \"GOT\"\nDUN MESIN WIF x\nOIC",
            "GOT\n",
        ),
        row(
            "II",
            "DUN MESIN WIF",
            "WE HAS A x ITZ A NUMBR AN IM SHARIN IT\nIM SRSLY MESIN WIF x\nDUN MESIN WIF x\nVISIBLE \"ok\"",
            "ok\n",
        ),
        row_pes("II", "HUGZ", 8, "HUGZ\nVISIBLE \"hugged\""),
        row_pes(
            "II",
            "TXT MAH BFF stmt",
            4,
            "WE HAS A x ITZ SRSLY A NUMBR\nx R ME\nHUGZ\nI HAS A y\nTXT MAH BFF 0, y R UR x\nVISIBLE y",
        ),
        row_pes(
            "II",
            "TXT ... AN STUFF/TTYL",
            4,
            "WE HAS A x ITZ SRSLY A NUMBR\nx R ME\nHUGZ\nI HAS A y\nTXT MAH BFF 0 AN STUFF\ny R UR x\nTTYL\nVISIBLE y",
        ),
        row("II", "ITZ SRSLY A", "I HAS A x ITZ SRSLY A NUMBR\nx R 3.9\nVISIBLE x", "3\n"),
        row_pes(
            "II",
            "WE HAS A ... SHARIN",
            2,
            "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\nx R ME\nHUGZ\nVISIBLE x",
        ),
        row_pes(
            "II",
            "WE HAS A LOTZ A",
            2,
            "WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 8\na'Z 0 R ME\nHUGZ\nVISIBLE a'Z 0",
        ),
        row_pes(
            "II",
            "UR / MAH",
            4,
            "WE HAS A x ITZ SRSLY A NUMBR\nx R ME\nHUGZ\nI HAS A d\nTXT MAH BFF 0, d R SUM OF UR x AN MAH x\nVISIBLE d",
        ),
        row("II", "var'Z idx", "I HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4\na'Z 3 R 30\nVISIBLE a'Z 3", "30\n"),
        // ---- Table III ----
        row_pes("III", "WHATEVR", 1, "I HAS A r ITZ WHATEVR\nVISIBLE BOTH OF NOT SMALLR r AN 0 AN SMALLR r AN 2147483648"),
        row_pes("III", "WHATEVAR", 1, "I HAS A f ITZ WHATEVAR\nVISIBLE BOTH OF NOT SMALLR f AN 0.0 AN SMALLR f AN 1.0"),
        row("III", "SQUAR OF", "VISIBLE SQUAR OF 12", "144\n"),
        row("III", "UNSQUAR OF", "VISIBLE UNSQUAR OF 144", "12.00\n"),
        row("III", "FLIP OF", "VISIBLE FLIP OF 4", "0.25\n"),
    ];
    // SRS is interpreter-only.
    rows.push(Row {
        table: "I",
        row: "SRS identifier",
        src: "HAI 1.2\nI HAS A cat ITZ 9\nVISIBLE SRS \"cat\"\nKTHXBYE".to_string(),
        want: Some("9\n".to_string()),
        n_pes: 1,
        interp_only: true,
    });
    rows
}

fn main() {
    let rows = matrix();
    let mut pass = 0usize;
    let mut fail = 0usize;
    println!("| Table | Row | PEs | interp | vm | time |");
    println!("|-------|-----|-----|--------|----|------|");
    for r in &rows {
        let t0 = Instant::now();
        let cfg = RunConfig::new(r.n_pes).timeout(Duration::from_secs(30)).seed(1);
        let interp = run_source(&r.src, cfg.clone());
        let interp_ok = match (&interp, &r.want) {
            (Ok(outs), Some(w)) => &outs[0] == w,
            (Ok(_), None) => true,
            (Err(_), _) => false,
        };
        let vm_ok = if r.interp_only {
            true // n/a
        } else {
            let vm = run_source(&r.src, cfg.backend(Backend::Vm));
            match (&vm, &interp) {
                (Ok(v), Ok(i)) => v == i,
                _ => false,
            }
        };
        let dt = t0.elapsed();
        let ok = interp_ok && vm_ok;
        if ok {
            pass += 1;
        } else {
            fail += 1;
        }
        println!(
            "| {} | {} | {} | {} | {} | {:.1?} |",
            r.table,
            r.row,
            r.n_pes,
            if interp_ok { "PASS" } else { "FAIL" },
            if r.interp_only {
                "n/a"
            } else if vm_ok {
                "PASS"
            } else {
                "FAIL"
            },
            dt
        );
    }
    println!("\nconformance: {pass}/{} rows pass (Table I: 19, II: 13, III: 5)", rows.len());
    if fail > 0 {
        std::process::exit(1);
    }
}
