//! Experiment F1 — Figure 1 (the PGAS memory model).
//!
//! Regenerates the *shape* the figure depicts: symmetric addresses are
//! cheap locally, cost more remotely, and on a mesh NoC the cost grows
//! with Manhattan distance. Also measures block-transfer bandwidth,
//! the `put_block`/`get_block` path used by whole-array copies.
//!
//! Series reported:
//!   get/local, get/remote_flat, get/mesh_hops_{1,3,6}
//!   put_block/words_{8,64,512,4096}

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lol_shmem::{LatencyModel, ShmemConfig, World};
use std::hint::black_box;

fn bench_get_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("F1_pgas_get");
    g.sample_size(20);

    // Pure shared-memory path (LatencyModel::Off): local vs remote is
    // the same atomic load — the baseline the simulator adds cost to.
    let world = World::new(ShmemConfig::new(16));
    let pe0 = world.pe(0);
    let a = lol_shmem::SymAddr(0);
    g.bench_function("local_off", |b| b.iter(|| black_box(pe0.get_i64(black_box(a), 0))));
    g.bench_function("remote_off", |b| b.iter(|| black_box(pe0.get_i64(black_box(a), 15))));

    // Epiphany-III eMesh model: cost grows with hop count (4x4 mesh).
    let mesh = World::new(ShmemConfig::new(16).latency(LatencyModel::epiphany16()));
    let m0 = mesh.pe(0);
    for (target, hops) in [(1usize, 1u32), (5, 2), (15, 6)] {
        g.bench_with_input(BenchmarkId::new("mesh_get_hops", hops), &target, |b, &t| {
            b.iter(|| black_box(m0.get_i64(black_box(a), t)))
        });
    }

    // Cray-like flat network: remote cost independent of "distance".
    let flat = World::new(ShmemConfig::new(16).latency(LatencyModel::xc40()));
    let f0 = flat.pe(0);
    for target in [1usize, 15] {
        g.bench_with_input(BenchmarkId::new("flat_get_pe", target), &target, |b, &t| {
            b.iter(|| black_box(f0.get_i64(black_box(a), t)))
        });
    }
    g.finish();
}

fn bench_block_bandwidth(c: &mut Criterion) {
    let mut g = c.benchmark_group("F1_block_put");
    g.sample_size(20);
    let world = World::new(ShmemConfig::new(2).heap_words(1 << 14));
    let pe0 = world.pe(0);
    let a = lol_shmem::SymAddr(0);
    for words in [8usize, 64, 512, 4096] {
        let buf = vec![0xABu64; words];
        g.throughput(Throughput::Bytes((words * 8) as u64));
        g.bench_with_input(BenchmarkId::new("words", words), &words, |b, _| {
            b.iter(|| pe0.put_block(black_box(a), 1, black_box(&buf)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_get_latency, bench_block_bandwidth);
criterion_main!(benches);
