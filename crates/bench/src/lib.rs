//! # lol-bench — the benchmark harness
//!
//! One Criterion bench per reproduced experiment (see EXPERIMENTS.md):
//!
//! * `pgas_memory` — Figure 1: local vs remote access, mesh locality
//! * `barrier` — Figure 2 + ablation A1: barrier algorithms vs PE count
//! * `locks` — Section VI.B + ablation A2: lock algorithms under contention
//! * `ring` — Section VI.A: circular whole-array transfer vs size
//! * `nbody` — Section VI.D: the paper's n-body, weak scaling
//! * `interp_vs_vm` — §II.B: compiled vs interpreted execution
//! * `compiler_speed` — front-end + backend throughput
//! * `table_conformance` — regenerates the Table I/II/III matrices
//!
//! Run everything with `cargo bench --workspace`.
