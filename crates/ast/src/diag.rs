//! LOLCODE-flavoured diagnostics.
//!
//! Errors open with `O NOES!` and warnings with `HMM...`, in keeping with
//! the paper's observation that the language should stay "oddly humorous"
//! — but every diagnostic also carries a stable machine-readable code and
//! a precise source span, because this is still a real compiler.

use crate::span::{SourceMap, Span};
use std::fmt;

/// How bad it is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Something worth mentioning but harmless.
    Warning,
    /// Compilation (or execution) cannot proceed.
    Error,
}

/// A single diagnostic message.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    pub severity: Severity,
    /// Stable code, e.g. `LEX0001`, `PAR0003`, `SEM0007`, `RUN0002`.
    pub code: &'static str,
    /// Human message (already LOLCODE-flavoured where appropriate).
    pub message: String,
    /// Primary location.
    pub span: Span,
    /// Extra context lines ("halp:" notes).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A new error diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>, span: Span) -> Self {
        Diagnostic { severity: Severity::Error, code, message: message.into(), span, notes: vec![] }
    }

    /// A new warning diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code,
            message: message.into(),
            span,
            notes: vec![],
        }
    }

    /// Attach a `halp:` note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Render the diagnostic against the source, with a caret line.
    ///
    /// ```text
    /// O NOES! [PAR0002] I EXPECTED A KEYWORD BUT I GOTZ "FISH"
    ///   --> line 3, col 9
    ///    |
    ///  3 | VISIBLE FISH AN CHIPS
    ///    |         ^^^^
    ///   halp: maybe u meant VISIBLE "FISH"?
    /// ```
    pub fn render(&self, sm: &SourceMap) -> String {
        let mut out = String::new();
        let prefix = match self.severity {
            Severity::Error => "O NOES!",
            Severity::Warning => "HMM...",
        };
        let lc = sm.lookup(self.span.lo);
        out.push_str(&format!("{prefix} [{}] {}\n", self.code, self.message));
        out.push_str(&format!("  --> line {}, col {}\n", lc.line, lc.col));
        let line_text = sm.line_text(lc.line);
        if !line_text.is_empty() {
            out.push_str("   |\n");
            out.push_str(&format!("{:>3}| {}\n", lc.line, line_text));
            let caret_len = (self.span.len().max(1) as usize).min(line_text.len().max(1));
            out.push_str(&format!(
                "   | {}{}\n",
                " ".repeat((lc.col as usize).saturating_sub(1)),
                "^".repeat(caret_len)
            ));
        }
        for n in &self.notes {
            out.push_str(&format!("  halp: {n}\n"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefix = match self.severity {
            Severity::Error => "O NOES!",
            Severity::Warning => "HMM...",
        };
        write!(f, "{prefix} [{}] {}", self.code, self.message)
    }
}

impl std::error::Error for Diagnostic {}

/// A collection of diagnostics accumulated by a pass.
#[derive(Debug, Default, Clone)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// All recorded diagnostics in order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// True if any error-severity diagnostic was recorded.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Consume into the underlying vector.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.items
    }

    /// Render all diagnostics against a source map.
    pub fn render_all(&self, sm: &SourceMap) -> String {
        self.items.iter().map(|d| d.render(sm)).collect::<Vec<_>>().join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_meme_prefix_and_code() {
        let sm = SourceMap::new("HAI 1.2\nVISIBLE FISH\nKTHXBYE");
        let d = Diagnostic::error("PAR0002", "I EXPECTED A YARN", Span::new(16, 20));
        let r = d.render(&sm);
        assert!(r.contains("O NOES!"), "{r}");
        assert!(r.contains("[PAR0002]"), "{r}");
        assert!(r.contains("line 2"), "{r}");
        assert!(r.contains("VISIBLE FISH"), "{r}");
        assert!(r.contains("^^^^"), "{r}");
    }

    #[test]
    fn warning_prefix() {
        let sm = SourceMap::new("HUGZ");
        let d = Diagnostic::warning("SEM0009", "DIS LOCK IZ NEVER RELEASED", Span::new(0, 4));
        assert!(d.render(&sm).starts_with("HMM..."));
    }

    #[test]
    fn notes_are_rendered() {
        let sm = SourceMap::new("X R 1");
        let d = Diagnostic::error("SEM0001", "WHO IZ X?", Span::new(0, 1))
            .with_note("declare it wif I HAS A X");
        assert!(d.render(&sm).contains("halp: declare it wif I HAS A X"));
    }

    #[test]
    fn diagnostics_error_tracking() {
        let mut ds = Diagnostics::new();
        assert!(ds.is_empty());
        ds.push(Diagnostic::warning("W", "w", Span::DUMMY));
        assert!(!ds.has_errors());
        ds.push(Diagnostic::error("E", "e", Span::DUMMY));
        assert!(ds.has_errors());
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn display_is_single_line() {
        let d = Diagnostic::error("RUN0001", "DIVIDIN BY ZERO IZ NOT ALLOWED", Span::DUMMY);
        let s = format!("{d}");
        assert!(!s.contains('\n'));
        assert!(s.contains("RUN0001"));
    }
}
