//! A read-only visitor over the AST.
//!
//! Passes that only need to *inspect* the tree (lint checks, symmetric
//! layout collection, conformance counting) implement [`Visitor`] and get
//! traversal order for free from the `walk_*` functions. Override only
//! the hooks you care about; every hook's default walks deeper.

use crate::ast::*;

/// Read-only AST visitor. All methods have walking defaults.
pub trait Visitor {
    fn visit_program(&mut self, p: &Program) {
        walk_program(self, p);
    }
    fn visit_func(&mut self, f: &FuncDef) {
        walk_func(self, f);
    }
    fn visit_block(&mut self, b: &Block) {
        walk_block(self, b);
    }
    fn visit_stmt(&mut self, s: &Stmt) {
        walk_stmt(self, s);
    }
    fn visit_decl(&mut self, d: &Decl) {
        walk_decl(self, d);
    }
    fn visit_expr(&mut self, e: &Expr) {
        walk_expr(self, e);
    }
    fn visit_lvalue(&mut self, lv: &LValue) {
        walk_lvalue(self, lv);
    }
    fn visit_varref(&mut self, v: &VarRef) {
        walk_varref(self, v);
    }
}

pub fn walk_program<V: Visitor + ?Sized>(v: &mut V, p: &Program) {
    v.visit_block(&p.body);
    for f in &p.funcs {
        v.visit_func(f);
    }
}

pub fn walk_func<V: Visitor + ?Sized>(v: &mut V, f: &FuncDef) {
    v.visit_block(&f.body);
}

pub fn walk_block<V: Visitor + ?Sized>(v: &mut V, b: &Block) {
    for s in b {
        v.visit_stmt(s);
    }
}

pub fn walk_stmt<V: Visitor + ?Sized>(v: &mut V, s: &Stmt) {
    match &s.kind {
        StmtKind::Declare(d) => v.visit_decl(d),
        StmtKind::Assign { target, value } => {
            v.visit_lvalue(target);
            v.visit_expr(value);
        }
        StmtKind::ExprStmt(e) => v.visit_expr(e),
        StmtKind::Visible { args, .. } => {
            for a in args {
                v.visit_expr(a);
            }
        }
        StmtKind::Gimmeh(lv) => v.visit_lvalue(lv),
        StmtKind::If(ifs) => {
            v.visit_block(&ifs.then_block);
            for m in &ifs.mebbes {
                v.visit_expr(&m.cond);
                v.visit_block(&m.body);
            }
            if let Some(e) = &ifs.else_block {
                v.visit_block(e);
            }
        }
        StmtKind::Switch(sw) => {
            for arm in &sw.arms {
                v.visit_block(&arm.body);
            }
            if let Some(d) = &sw.default {
                v.visit_block(d);
            }
        }
        StmtKind::Loop(lp) => {
            if let Some((_, e)) = &lp.guard {
                v.visit_expr(e);
            }
            v.visit_block(&lp.body);
        }
        StmtKind::Gtfo | StmtKind::Hugz => {}
        StmtKind::FoundYr(e) => v.visit_expr(e),
        StmtKind::IsNowA { target, .. } => v.visit_lvalue(target),
        StmtKind::LockAcquire(vr) | StmtKind::LockTry(vr) | StmtKind::LockRelease(vr) => {
            v.visit_varref(vr)
        }
        StmtKind::TxtStmt { pe, stmt } => {
            v.visit_expr(pe);
            v.visit_stmt(stmt);
        }
        StmtKind::TxtBlock { pe, body } => {
            v.visit_expr(pe);
            v.visit_block(body);
        }
    }
}

pub fn walk_decl<V: Visitor + ?Sized>(v: &mut V, d: &Decl) {
    if let Some(sz) = &d.array_size {
        v.visit_expr(sz);
    }
    if let Some(init) = &d.init {
        v.visit_expr(init);
    }
}

pub fn walk_lvalue<V: Visitor + ?Sized>(v: &mut V, lv: &LValue) {
    match lv {
        LValue::Var(vr) => v.visit_varref(vr),
        LValue::Index { arr, idx, .. } => {
            v.visit_varref(arr);
            v.visit_expr(idx);
        }
    }
}

pub fn walk_varref<V: Visitor + ?Sized>(v: &mut V, vr: &VarRef) {
    if let VarName::Srs(e) = &vr.name {
        v.visit_expr(e);
    }
}

pub fn walk_expr<V: Visitor + ?Sized>(v: &mut V, e: &Expr) {
    match &e.kind {
        ExprKind::Lit(_)
        | ExprKind::Me
        | ExprKind::MahFrenz
        | ExprKind::Whatevr
        | ExprKind::Whatevar => {}
        ExprKind::Var(vr) => v.visit_varref(vr),
        ExprKind::Index { arr, idx } => {
            v.visit_varref(arr);
            v.visit_expr(idx);
        }
        ExprKind::Bin { lhs, rhs, .. } => {
            v.visit_expr(lhs);
            v.visit_expr(rhs);
        }
        ExprKind::Un { expr, .. } => v.visit_expr(expr),
        ExprKind::Nary { args, .. } => {
            for a in args {
                v.visit_expr(a);
            }
        }
        ExprKind::Cast { expr, .. } => v.visit_expr(expr),
        ExprKind::Call { args, .. } => {
            for a in args {
                v.visit_expr(a);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    /// Counts every node category it sees.
    #[derive(Default)]
    struct Counter {
        stmts: usize,
        exprs: usize,
        varrefs: usize,
    }

    impl Visitor for Counter {
        fn visit_stmt(&mut self, s: &Stmt) {
            self.stmts += 1;
            walk_stmt(self, s);
        }
        fn visit_expr(&mut self, e: &Expr) {
            self.exprs += 1;
            walk_expr(self, e);
        }
        fn visit_varref(&mut self, v: &VarRef) {
            self.varrefs += 1;
            walk_varref(self, v);
        }
    }

    fn e(kind: ExprKind) -> Expr {
        Expr::new(kind, Span::DUMMY)
    }

    #[test]
    fn visits_nested_structures() {
        // TXT MAH BFF k AN STUFF / x R SUM OF UR y AN 1 / TTYL
        let body = vec![Stmt::new(
            StmtKind::Assign {
                target: LValue::Var(VarRef::named(Ident::synthetic("x"))),
                value: e(ExprKind::Bin {
                    op: BinOp::Sum,
                    lhs: Box::new(e(ExprKind::Var(VarRef {
                        name: VarName::Named(Ident::synthetic("y")),
                        locality: Locality::Ur,
                        span: Span::DUMMY,
                    }))),
                    rhs: Box::new(e(ExprKind::Lit(Lit::Numbr(1)))),
                }),
            },
            Span::DUMMY,
        )];
        let prog = Program {
            version: None,
            includes: vec![],
            body: vec![Stmt::new(
                StmtKind::TxtBlock {
                    pe: e(ExprKind::Var(VarRef::named(Ident::synthetic("k")))),
                    body,
                },
                Span::DUMMY,
            )],
            funcs: vec![],
        };
        let mut c = Counter::default();
        c.visit_program(&prog);
        assert_eq!(c.stmts, 2, "outer TXT block + inner assign");
        // k, SUM OF ..., UR y, 1 = 4 exprs
        assert_eq!(c.exprs, 4);
        // x (lvalue), UR y, k = 3 varrefs
        assert_eq!(c.varrefs, 3);
    }

    #[test]
    fn visits_functions() {
        let prog = Program {
            version: None,
            includes: vec![],
            body: vec![],
            funcs: vec![FuncDef {
                name: Ident::synthetic("f"),
                params: vec![Ident::synthetic("a")],
                body: vec![Stmt::new(
                    StmtKind::FoundYr(e(ExprKind::Var(VarRef::named(Ident::synthetic("a"))))),
                    Span::DUMMY,
                )],
                span: Span::DUMMY,
            }],
        };
        let mut c = Counter::default();
        c.visit_program(&prog);
        assert_eq!(c.stmts, 1);
        assert_eq!(c.exprs, 1);
    }
}
