//! # lol-ast — syntax tree for parallel LOLCODE
//!
//! This crate defines everything the rest of the toolchain agrees on:
//!
//! * [`span`] — byte spans and the [`span::SourceMap`] used to render
//!   line/column diagnostics,
//! * [`intern`] — a tiny thread-safe string interner ([`intern::Symbol`]),
//! * [`types`] — the LOLCODE value types (`NUMBR`, `NUMBAR`, `YARN`,
//!   `TROOF`, `NOOB`),
//! * [`ast`] — the abstract syntax tree for LOLCODE 1.2 plus the paper's
//!   parallel and convenience extensions (Tables I, II and III),
//! * [`diag`] — LOLCODE-flavoured diagnostics ("O NOES!"),
//! * [`visit`] — a read-only visitor over the tree,
//! * [`pretty`] — a canonical pretty-printer whose output re-parses to an
//!   identical tree (used by the round-trip property tests).
//!
//! The crate is dependency-free so that every other crate in the
//! workspace can depend on it without pulling anything else in.

pub mod ast;
pub mod diag;
pub mod intern;
pub mod pretty;
pub mod span;
pub mod types;
pub mod visit;

pub use ast::*;
pub use diag::{Diagnostic, Severity};
pub use intern::Symbol;
pub use span::{SourceMap, Span};
pub use types::LolType;
