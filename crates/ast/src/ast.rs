//! The abstract syntax tree for parallel LOLCODE.
//!
//! Covers the full surface of the paper:
//!
//! * Table I — LOLCODE 1.2 basics (declarations, `VISIBLE`/`GIMMEH`,
//!   operators, casts, `O RLY?`, `WTF?`, `IM IN YR` loops, functions,
//!   statement separators and continuations),
//! * Table II — parallel/distributed extensions (`ME`, `MAH FRENZ`,
//!   `HUGZ`, locks, `TXT MAH BFF` predication, `UR`/`MAH` locality
//!   qualifiers, shared/static declarations, `'Z` indexing),
//! * Table III — convenience extensions (`WHATEVR`, `WHATEVAR`,
//!   `SQUAR OF`, `UNSQUAR OF`, `FLIP OF`).
//!
//! Every node carries a [`Span`]; structural equality for tests that
//! compare trees modulo positions is provided by [`Program::eq_modulo_spans`]
//! via the pretty-printer (two trees are equal iff their canonical
//! printouts match).

use crate::intern::Symbol;
use crate::span::Span;
use crate::types::LolType;

/// A whole program: `HAI [version] ... KTHXBYE` plus hoisted functions.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The version literal after `HAI`, if present (e.g. `1.2`).
    pub version: Option<String>,
    /// `CAN HAS <lib>?` includes, recorded in order.
    pub includes: Vec<Include>,
    /// Top-level statements between `HAI` and `KTHXBYE`.
    pub body: Block,
    /// `HOW IZ I` function definitions (top level only, like lci).
    pub funcs: Vec<FuncDef>,
}

/// `CAN HAS STDIO?` — the paper keeps these as no-op imports.
#[derive(Debug, Clone, PartialEq)]
pub struct Include {
    pub lib: Ident,
    pub span: Span,
}

/// A sequence of statements.
pub type Block = Vec<Stmt>;

/// An identifier with its source position.
///
/// Equality and hashing consider only the symbol, not the span, so two
/// references to the same name compare equal wherever they appear.
#[derive(Debug, Clone, Copy, Eq)]
pub struct Ident {
    pub sym: Symbol,
    pub span: Span,
}

impl PartialEq for Ident {
    fn eq(&self, other: &Self) -> bool {
        self.sym == other.sym
    }
}

impl std::hash::Hash for Ident {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.sym.hash(state);
    }
}

impl Ident {
    pub fn new(sym: impl Into<Symbol>, span: Span) -> Self {
        Ident { sym: sym.into(), span }
    }

    /// Synthesized identifier with a dummy span (tests, desugaring).
    pub fn synthetic(name: &str) -> Self {
        Ident { sym: Symbol::intern(name), span: Span::DUMMY }
    }
}

/// `UR x` / `MAH x` / bare `x` — where a variable reference resolves
/// under `TXT MAH BFF` predication (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Locality {
    /// No qualifier: the local instance (see DESIGN.md §3.1).
    #[default]
    Unqualified,
    /// `MAH x` — explicitly the local instance.
    Mah,
    /// `UR x` — the instance of the current BFF (predicated PE).
    Ur,
}

/// How a variable is named: statically, or dynamically via `SRS expr`.
#[derive(Debug, Clone, PartialEq)]
pub enum VarName {
    /// An ordinary identifier.
    Named(Ident),
    /// `SRS expr` — the YARN value of `expr` names the variable.
    Srs(Box<Expr>),
}

impl VarName {
    /// The static symbol, if this is not an `SRS` reference.
    pub fn as_named(&self) -> Option<Ident> {
        match self {
            VarName::Named(id) => Some(*id),
            VarName::Srs(_) => None,
        }
    }
}

/// A (possibly qualified) variable reference.
#[derive(Debug, Clone, PartialEq)]
pub struct VarRef {
    pub name: VarName,
    pub locality: Locality,
    pub span: Span,
}

impl VarRef {
    /// Unqualified reference to a named variable.
    pub fn named(id: Ident) -> Self {
        VarRef { name: VarName::Named(id), locality: Locality::Unqualified, span: id.span }
    }
}

/// The target of an assignment or `GIMMEH`.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar (or whole-array: `MAH array R UR array`) variable.
    Var(VarRef),
    /// `arr'Z idx` — an array element (Table II).
    Index { arr: VarRef, idx: Box<Expr>, span: Span },
}

impl LValue {
    pub fn span(&self) -> Span {
        match self {
            LValue::Var(v) => v.span,
            LValue::Index { span, .. } => *span,
        }
    }
}

/// Binary prefix operators (`SUM OF x AN y`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `SUM OF` — addition.
    Sum,
    /// `DIFF OF` — subtraction.
    Diff,
    /// `PRODUKT OF` — multiplication.
    Produkt,
    /// `QUOSHUNT OF` — division (integer when both NUMBRs).
    Quoshunt,
    /// `MOD OF` — modulo.
    Mod,
    /// `BIGGR OF` — max (LOLCODE 1.2).
    BiggrOf,
    /// `SMALLR OF` — min (LOLCODE 1.2).
    SmallrOf,
    /// `BOTH SAEM` — equality.
    BothSaem,
    /// `DIFFRINT` — inequality.
    Diffrint,
    /// `BIGGER` — greater-than (paper, Table I).
    Bigger,
    /// `SMALLR` — less-than (paper, Table I).
    Smallr,
    /// `BOTH OF` — logical and.
    BothOf,
    /// `EITHER OF` — logical or.
    EitherOf,
    /// `WON OF` — logical xor.
    WonOf,
}

impl BinOp {
    /// Canonical source spelling.
    pub fn keyword(self) -> &'static str {
        match self {
            BinOp::Sum => "SUM OF",
            BinOp::Diff => "DIFF OF",
            BinOp::Produkt => "PRODUKT OF",
            BinOp::Quoshunt => "QUOSHUNT OF",
            BinOp::Mod => "MOD OF",
            BinOp::BiggrOf => "BIGGR OF",
            BinOp::SmallrOf => "SMALLR OF",
            BinOp::BothSaem => "BOTH SAEM",
            BinOp::Diffrint => "DIFFRINT",
            BinOp::Bigger => "BIGGER",
            BinOp::Smallr => "SMALLR",
            BinOp::BothOf => "BOTH OF",
            BinOp::EitherOf => "EITHER OF",
            BinOp::WonOf => "WON OF",
        }
    }

    /// Is this an arithmetic operator (operands coerced to numbers)?
    pub fn is_arith(self) -> bool {
        matches!(
            self,
            BinOp::Sum
                | BinOp::Diff
                | BinOp::Produkt
                | BinOp::Quoshunt
                | BinOp::Mod
                | BinOp::BiggrOf
                | BinOp::SmallrOf
        )
    }

    /// Is this a comparison (result TROOF)?
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::BothSaem | BinOp::Diffrint | BinOp::Bigger | BinOp::Smallr)
    }

    /// Is this a boolean connective (operands coerced to TROOF)?
    pub fn is_boolean(self) -> bool {
        matches!(self, BinOp::BothOf | BinOp::EitherOf | BinOp::WonOf)
    }
}

/// Unary prefix operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `NOT` — logical negation.
    Not,
    /// `SQUAR OF` — x*x (Table III).
    Squar,
    /// `UNSQUAR OF` — sqrt(x) (Table III).
    Unsquar,
    /// `FLIP OF` — 1/x (Table III).
    Flip,
}

impl UnOp {
    pub fn keyword(self) -> &'static str {
        match self {
            UnOp::Not => "NOT",
            UnOp::Squar => "SQUAR OF",
            UnOp::Unsquar => "UNSQUAR OF",
            UnOp::Flip => "FLIP OF",
        }
    }
}

/// Variadic operators terminated by `MKAY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NaryOp {
    /// `ALL OF a AN b ... MKAY` — n-ary and.
    AllOf,
    /// `ANY OF a AN b ... MKAY` — n-ary or.
    AnyOf,
    /// `SMOOSH a AN b ... MKAY` — string concatenation.
    Smoosh,
}

impl NaryOp {
    pub fn keyword(self) -> &'static str {
        match self {
            NaryOp::AllOf => "ALL OF",
            NaryOp::AnyOf => "ANY OF",
            NaryOp::Smoosh => "SMOOSH",
        }
    }
}

/// A piece of a YARN literal: either raw text or a `:{var}` interpolation.
#[derive(Debug, Clone, PartialEq)]
pub enum YarnPart {
    /// Literal text (escapes already resolved).
    Text(String),
    /// `:{name}` — interpolate the named variable at runtime.
    Var(Ident),
}

/// Literal values.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// Integer literal.
    Numbr(i64),
    /// Float literal.
    Numbar(f64),
    /// String literal with optional interpolations.
    Yarn(Vec<YarnPart>),
    /// `WIN` / `FAIL`.
    Troof(bool),
    /// `NOOB`.
    Noob,
}

impl Lit {
    /// A YARN literal with no interpolation.
    pub fn yarn(s: impl Into<String>) -> Lit {
        Lit::Yarn(vec![YarnPart::Text(s.into())])
    }
}

/// Expression node.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

impl Expr {
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// A literal.
    Lit(Lit),
    /// Variable read (includes `IT`).
    Var(VarRef),
    /// `arr'Z idx` — array element read.
    Index { arr: VarRef, idx: Box<Expr> },
    /// Binary prefix operation `OP lhs AN rhs`.
    Bin { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr> },
    /// Unary prefix operation.
    Un { op: UnOp, expr: Box<Expr> },
    /// Variadic operation terminated by `MKAY`.
    Nary { op: NaryOp, args: Vec<Expr> },
    /// `MAEK expr A type` — cast.
    Cast { expr: Box<Expr>, ty: LolType },
    /// `I IZ name [YR a [AN YR b ...]] MKAY` — function call.
    Call { name: Ident, args: Vec<Expr> },
    /// `ME` — this PE's id (Table II).
    Me,
    /// `MAH FRENZ` — total number of PEs (Table II).
    MahFrenz,
    /// `WHATEVR` — random integer (Table III).
    Whatevr,
    /// `WHATEVAR` — random float in [0,1) (Table III).
    Whatevar,
}

/// Kind of loop update clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopDir {
    /// `UPPIN` — increment by one.
    Uppin,
    /// `NERFIN` — decrement by one.
    Nerfin,
}

/// `TIL` / `WILE` guard flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardKind {
    /// `TIL expr` — loop until expr becomes WIN.
    Til,
    /// `WILE expr` — loop while expr stays WIN.
    Wile,
}

/// `IM IN YR label [UPPIN|NERFIN YR var [TIL|WILE expr]] ... IM OUTTA YR label`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopStmt {
    pub label: Ident,
    /// Update clause, if present.
    pub update: Option<(LoopDir, Ident)>,
    /// Guard clause, if present.
    pub guard: Option<(GuardKind, Expr)>,
    pub body: Block,
}

/// One `MEBBE expr ... ` arm of an `O RLY?`.
#[derive(Debug, Clone, PartialEq)]
pub struct MebbeArm {
    pub cond: Expr,
    pub body: Block,
}

/// `expr, O RLY? YA RLY ... [MEBBE ...] [NO WAI ...] OIC`.
#[derive(Debug, Clone, PartialEq)]
pub struct IfStmt {
    /// YA RLY branch.
    pub then_block: Block,
    /// MEBBE branches in order.
    pub mebbes: Vec<MebbeArm>,
    /// NO WAI branch.
    pub else_block: Option<Block>,
}

/// One `OMG literal` arm of a `WTF?`.
#[derive(Debug, Clone, PartialEq)]
pub struct OmgArm {
    pub value: Lit,
    pub body: Block,
}

/// `WTF? OMG v ... [OMGWTF ...] OIC`.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchStmt {
    pub arms: Vec<OmgArm>,
    pub default: Option<Block>,
}

/// Declaration scope: `I HAS A` (private) vs `WE HAS A` (symmetric shared).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeclScope {
    /// `I HAS A` — per-PE private variable.
    I,
    /// `WE HAS A` — symmetric shared variable (PGAS, Table II).
    We,
}

/// A variable or array declaration with the paper's multi-clause
/// extensions.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    pub scope: DeclScope,
    pub name: Ident,
    /// Declared type, from `ITZ A t` or `ITZ SRSLY A t`.
    pub ty: Option<LolType>,
    /// `SRSLY` — statically typed (paper extension).
    pub srsly: bool,
    /// `LOTZ A <type>S AN THAR IZ <size>` — array with element count.
    pub array_size: Option<Expr>,
    /// `ITZ value` / `AN ITZ value` initializer.
    pub init: Option<Expr>,
    /// `AN IM SHARIN IT` — attach an implicit lock (Table II).
    pub sharin: bool,
    pub span: Span,
}

/// `HOW IZ I name [YR p [AN YR q ...]] ... IF U SAY SO`.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    pub name: Ident,
    pub params: Vec<Ident>,
    pub body: Block,
    pub span: Span,
}

/// Statement node.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub span: Span,
}

impl Stmt {
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span }
    }
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Variable/array declaration.
    Declare(Decl),
    /// `target R value` (also whole-array copy).
    Assign { target: LValue, value: Expr },
    /// Bare expression: evaluates into `IT`.
    ExprStmt(Expr),
    /// `VISIBLE a b c [!]` — print; `newline == false` when `!`-suffixed.
    Visible { args: Vec<Expr>, newline: bool },
    /// `GIMMEH var` — read a line of input into var (as YARN).
    Gimmeh(LValue),
    /// `O RLY?` conditional on `IT`.
    If(IfStmt),
    /// `WTF?` switch on `IT`.
    Switch(SwitchStmt),
    /// `IM IN YR ...` loop.
    Loop(LoopStmt),
    /// `GTFO` — break from loop/switch, or return NOOB from a function.
    Gtfo,
    /// `FOUND YR expr` — return a value from a function.
    FoundYr(Expr),
    /// `var IS NOW A type` — in-place cast.
    IsNowA { target: LValue, ty: LolType },
    /// `HUGZ` — collective barrier (Table II).
    Hugz,
    /// `IM SRSLY MESIN WIF var` — blocking lock acquire (Table II).
    LockAcquire(VarRef),
    /// `IM MESIN WIF var` — non-blocking trylock; sets `IT` (Table II).
    LockTry(VarRef),
    /// `DUN MESIN WIF var` — lock release (Table II).
    LockRelease(VarRef),
    /// `TXT MAH BFF expr, stmt` — single-statement predication.
    TxtStmt { pe: Expr, stmt: Box<Stmt> },
    /// `TXT MAH BFF expr AN STUFF ... TTYL` — block predication.
    TxtBlock { pe: Expr, body: Block },
}

impl Program {
    /// Compare two programs ignoring spans, by canonical printing.
    ///
    /// The pretty-printer emits a normal form (one statement per line, no
    /// comments, canonical keyword spellings), so textual equality of the
    /// printouts is exactly structural equality modulo spans.
    pub fn eq_modulo_spans(&self, other: &Program) -> bool {
        crate::pretty::print_program(self) == crate::pretty::print_program(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn num(n: i64) -> Expr {
        Expr::new(ExprKind::Lit(Lit::Numbr(n)), Span::DUMMY)
    }

    #[test]
    fn build_simple_program() {
        let prog = Program {
            version: Some("1.2".into()),
            includes: vec![],
            body: vec![Stmt::new(
                StmtKind::Visible { args: vec![num(42)], newline: true },
                Span::DUMMY,
            )],
            funcs: vec![],
        };
        assert_eq!(prog.body.len(), 1);
        assert!(prog.eq_modulo_spans(&prog.clone()));
    }

    #[test]
    fn binop_classification_is_partitioned() {
        let all = [
            BinOp::Sum,
            BinOp::Diff,
            BinOp::Produkt,
            BinOp::Quoshunt,
            BinOp::Mod,
            BinOp::BiggrOf,
            BinOp::SmallrOf,
            BinOp::BothSaem,
            BinOp::Diffrint,
            BinOp::Bigger,
            BinOp::Smallr,
            BinOp::BothOf,
            BinOp::EitherOf,
            BinOp::WonOf,
        ];
        for op in all {
            let classes =
                [op.is_arith(), op.is_comparison(), op.is_boolean()].iter().filter(|&&b| b).count();
            assert_eq!(classes, 1, "{op:?} must belong to exactly one class");
        }
    }

    #[test]
    fn keywords_are_distinct() {
        use std::collections::HashSet;
        let kws: HashSet<&str> = [
            BinOp::Sum,
            BinOp::Diff,
            BinOp::Produkt,
            BinOp::Quoshunt,
            BinOp::Mod,
            BinOp::BiggrOf,
            BinOp::SmallrOf,
            BinOp::BothSaem,
            BinOp::Diffrint,
            BinOp::Bigger,
            BinOp::Smallr,
            BinOp::BothOf,
            BinOp::EitherOf,
            BinOp::WonOf,
        ]
        .iter()
        .map(|o| o.keyword())
        .collect();
        assert_eq!(kws.len(), 14);
    }

    #[test]
    fn lvalue_span_delegates() {
        let v = VarRef::named(Ident::synthetic("x"));
        assert_eq!(LValue::Var(v.clone()).span(), Span::DUMMY);
        let idx = LValue::Index { arr: v, idx: Box::new(num(1)), span: Span::new(3, 9) };
        assert_eq!(idx.span(), Span::new(3, 9));
    }

    #[test]
    fn varname_as_named() {
        let named = VarName::Named(Ident::synthetic("x"));
        assert!(named.as_named().is_some());
        let srs = VarName::Srs(Box::new(num(1)));
        assert!(srs.as_named().is_none());
    }

    #[test]
    fn lit_yarn_helper() {
        assert_eq!(Lit::yarn("HAI"), Lit::Yarn(vec![YarnPart::Text("HAI".into())]));
    }
}
