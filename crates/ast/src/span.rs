//! Byte spans into a single LOLCODE source buffer, plus a [`SourceMap`]
//! that converts offsets back to 1-based line/column pairs for
//! diagnostics.

use std::fmt;

/// A half-open byte range `[lo, hi)` into the program source.
///
/// Spans are deliberately tiny (8 bytes) because every token, expression
/// and statement carries one.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub lo: u32,
    /// Byte offset one past the last character.
    pub hi: u32,
}

impl Span {
    /// Create a span from raw byte offsets.
    #[inline]
    pub fn new(lo: u32, hi: u32) -> Self {
        debug_assert!(lo <= hi, "span lo {lo} > hi {hi}");
        Span { lo, hi }
    }

    /// The empty span used for synthesized nodes (e.g. by the pretty
    /// printer round-trip tests, which compare trees modulo spans).
    pub const DUMMY: Span = Span { lo: 0, hi: 0 };

    /// Smallest span covering both `self` and `other`.
    #[inline]
    pub fn to(self, other: Span) -> Span {
        Span::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Length of the span in bytes.
    #[inline]
    pub fn len(self) -> u32 {
        self.hi - self.lo
    }

    /// True when the span covers no bytes.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.lo == self.hi
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

/// 1-based line/column position produced by [`SourceMap::lookup`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LineCol {
    pub line: u32,
    pub col: u32,
}

/// Maps byte offsets to line/column pairs and can excerpt source lines.
///
/// Built once per compilation from the raw source text.
#[derive(Debug, Clone)]
pub struct SourceMap {
    src: String,
    /// Byte offset of the start of every line (line_starts[0] == 0).
    line_starts: Vec<u32>,
}

impl SourceMap {
    /// Build a map over `src`.
    pub fn new(src: impl Into<String>) -> Self {
        let src = src.into();
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceMap { src, line_starts }
    }

    /// The underlying source text.
    pub fn source(&self) -> &str {
        &self.src
    }

    /// Number of lines in the file (a trailing newline does not start a
    /// new countable line unless followed by text; we count raw starts).
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// Convert a byte offset into a 1-based line/column pair.
    pub fn lookup(&self, offset: u32) -> LineCol {
        let offset = offset.min(self.src.len() as u32);
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol { line: line_idx as u32 + 1, col: offset - self.line_starts[line_idx] + 1 }
    }

    /// The full text of the (1-based) line, without its newline.
    pub fn line_text(&self, line: u32) -> &str {
        let idx = (line as usize).saturating_sub(1);
        let start = *self.line_starts.get(idx).unwrap_or(&0) as usize;
        let end = self.line_starts.get(idx + 1).map(|&s| s as usize).unwrap_or(self.src.len());
        self.src[start..end].trim_end_matches(['\n', '\r'])
    }

    /// Excerpt the source covered by `span` (clamped to the buffer).
    pub fn snippet(&self, span: Span) -> &str {
        let lo = (span.lo as usize).min(self.src.len());
        let hi = (span.hi as usize).min(self.src.len());
        &self.src[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_and_len() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(b.to(a), Span::new(2, 9));
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Span::DUMMY.is_empty());
    }

    #[test]
    fn lookup_first_line() {
        let sm = SourceMap::new("HAI 1.2\nKTHXBYE\n");
        assert_eq!(sm.lookup(0), LineCol { line: 1, col: 1 });
        assert_eq!(sm.lookup(4), LineCol { line: 1, col: 5 });
    }

    #[test]
    fn lookup_later_lines() {
        let sm = SourceMap::new("HAI 1.2\nVISIBLE 1\nKTHXBYE");
        assert_eq!(sm.lookup(8), LineCol { line: 2, col: 1 });
        assert_eq!(sm.lookup(18), LineCol { line: 3, col: 1 });
    }

    #[test]
    fn lookup_clamps_past_end() {
        let sm = SourceMap::new("HAI");
        let lc = sm.lookup(999);
        assert_eq!(lc.line, 1);
    }

    #[test]
    fn line_text_strips_newline() {
        let sm = SourceMap::new("HAI 1.2\r\nKTHXBYE\n");
        assert_eq!(sm.line_text(1), "HAI 1.2");
        assert_eq!(sm.line_text(2), "KTHXBYE");
    }

    #[test]
    fn snippet_matches_span() {
        let sm = SourceMap::new("VISIBLE \"KITTEH\"");
        assert_eq!(sm.snippet(Span::new(0, 7)), "VISIBLE");
    }

    #[test]
    fn empty_source() {
        let sm = SourceMap::new("");
        assert_eq!(sm.lookup(0), LineCol { line: 1, col: 1 });
        assert_eq!(sm.line_text(1), "");
        assert_eq!(sm.line_count(), 1);
    }
}
