//! The LOLCODE type lattice.
//!
//! LOLCODE 1.2 is dynamically typed with five types; the paper's
//! `ITZ SRSLY A` extension pins a variable to one of them statically so
//! that the source-to-source compiler can emit native C types. Shared
//! (`WE HAS A`) variables must be statically typed because they live in
//! the symmetric heap at a fixed word-sized layout.

use std::fmt;

/// A LOLCODE value type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LolType {
    /// `NOOB` — the uninitialized/unit type.
    Noob,
    /// `TROOF` — boolean (`WIN` / `FAIL`).
    Troof,
    /// `NUMBR` — 64-bit signed integer.
    Numbr,
    /// `NUMBAR` — 64-bit IEEE float.
    Numbar,
    /// `YARN` — string.
    Yarn,
}

impl LolType {
    /// Keyword spelling (`NUMBR`, ...).
    pub fn keyword(self) -> &'static str {
        match self {
            LolType::Noob => "NOOB",
            LolType::Troof => "TROOF",
            LolType::Numbr => "NUMBR",
            LolType::Numbar => "NUMBAR",
            LolType::Yarn => "YARN",
        }
    }

    /// Plural keyword used in array declarations
    /// (`... ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32`).
    pub fn plural_keyword(self) -> &'static str {
        match self {
            LolType::Noob => "NOOBS",
            LolType::Troof => "TROOFS",
            LolType::Numbr => "NUMBRS",
            LolType::Numbar => "NUMBARS",
            LolType::Yarn => "YARNS",
        }
    }

    /// Parse a singular type keyword.
    pub fn from_keyword(kw: &str) -> Option<LolType> {
        Some(match kw {
            "NOOB" => LolType::Noob,
            "TROOF" => LolType::Troof,
            "NUMBR" => LolType::Numbr,
            "NUMBAR" => LolType::Numbar,
            "YARN" => LolType::Yarn,
            _ => return None,
        })
    }

    /// Parse a plural type keyword (array element type).
    pub fn from_plural_keyword(kw: &str) -> Option<LolType> {
        Some(match kw {
            "NOOBS" => LolType::Noob,
            "TROOFS" => LolType::Troof,
            "NUMBRS" => LolType::Numbr,
            "NUMBARS" => LolType::Numbar,
            "YARNS" => LolType::Yarn,
            _ => return None,
        })
    }

    /// Is this type representable as a single symmetric-heap word?
    ///
    /// `YARN` is not: the paper's shared data model (and OpenSHMEM's
    /// symmetric objects) covers numeric/boolean words; shared strings are
    /// rejected by semantic analysis.
    pub fn is_word_sized(self) -> bool {
        matches!(self, LolType::Troof | LolType::Numbr | LolType::Numbar)
    }

    /// Result type of arithmetic between two operand types, following
    /// LOLCODE 1.2: NUMBR op NUMBR = NUMBR (integer division!), anything
    /// involving a NUMBAR promotes to NUMBAR. YARNs are first coerced to
    /// a numeric type at runtime; statically we treat them as NUMBAR.
    pub fn arith_join(self, other: LolType) -> LolType {
        use LolType::*;
        match (self, other) {
            (Numbr, Numbr) => Numbr,
            (Troof, Numbr) | (Numbr, Troof) | (Troof, Troof) => Numbr,
            _ => Numbar,
        }
    }
}

impl fmt::Display for LolType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_roundtrip() {
        for t in [LolType::Noob, LolType::Troof, LolType::Numbr, LolType::Numbar, LolType::Yarn] {
            assert_eq!(LolType::from_keyword(t.keyword()), Some(t));
            assert_eq!(LolType::from_plural_keyword(t.plural_keyword()), Some(t));
        }
    }

    #[test]
    fn unknown_keyword_is_none() {
        assert_eq!(LolType::from_keyword("CHEEZBURGER"), None);
        assert_eq!(LolType::from_plural_keyword("NUMBR"), None);
    }

    #[test]
    fn word_sized_types() {
        assert!(LolType::Numbr.is_word_sized());
        assert!(LolType::Numbar.is_word_sized());
        assert!(LolType::Troof.is_word_sized());
        assert!(!LolType::Yarn.is_word_sized());
        assert!(!LolType::Noob.is_word_sized());
    }

    #[test]
    fn arithmetic_promotion() {
        use LolType::*;
        assert_eq!(Numbr.arith_join(Numbr), Numbr);
        assert_eq!(Numbr.arith_join(Numbar), Numbar);
        assert_eq!(Numbar.arith_join(Numbr), Numbar);
        assert_eq!(Numbar.arith_join(Numbar), Numbar);
        assert_eq!(Troof.arith_join(Numbr), Numbr);
        assert_eq!(Yarn.arith_join(Numbr), Numbar);
    }
}
