//! A tiny global string interner.
//!
//! Identifiers appear everywhere in the AST and are compared constantly
//! during semantic analysis and interpretation, so they are interned to a
//! `u32`-sized [`Symbol`]. Interned strings are leaked (the set of
//! distinct identifiers in a compilation session is small and bounded),
//! which lets `Symbol::as_str` hand out `&'static str` without locking.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned identifier. Copyable, hashable, O(1) comparison.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(Interner { map: HashMap::new(), strings: Vec::new() }))
}

impl Symbol {
    /// Intern `s`, returning its canonical symbol.
    pub fn intern(s: &str) -> Symbol {
        let mut int = interner().lock().expect("interner poisoned");
        if let Some(&id) = int.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = int.strings.len() as u32;
        int.strings.push(leaked);
        int.map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned text.
    pub fn as_str(self) -> &'static str {
        let int = interner().lock().expect("interner poisoned");
        int.strings[self.0 as usize]
    }

    /// The raw index (useful as a dense map key).
    pub fn index(self) -> u32 {
        self.0
    }

    /// The implicit result variable `IT` used by expression statements
    /// and `O RLY?` (LOLCODE 1.2 §"IT").
    pub fn it() -> Symbol {
        Symbol::intern("IT")
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_string_same_symbol() {
        assert_eq!(Symbol::intern("kitteh"), Symbol::intern("kitteh"));
    }

    #[test]
    fn different_strings_differ() {
        assert_ne!(Symbol::intern("ceiling_cat"), Symbol::intern("basement_cat"));
    }

    #[test]
    fn case_sensitive() {
        // LOLCODE identifiers are case sensitive per the 1.2 spec.
        assert_ne!(Symbol::intern("cheezburger"), Symbol::intern("CHEEZBURGER"));
    }

    #[test]
    fn roundtrips_text() {
        let s = Symbol::intern("i_can_has");
        assert_eq!(s.as_str(), "i_can_has");
        assert_eq!(s.to_string(), "i_can_has");
    }

    #[test]
    fn it_symbol_is_stable() {
        assert_eq!(Symbol::it(), Symbol::intern("IT"));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    (0..100)
                        .map(|j| Symbol::intern(&format!("sym_{}", (i + j) % 16)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for row in &all {
            for s in row {
                let again = Symbol::intern(s.as_str());
                assert_eq!(*s, again);
            }
        }
    }
}
