//! Canonical pretty-printer.
//!
//! Prints a [`Program`] back to LOLCODE source in a normal form: one
//! statement per line, two-space indentation, canonical keyword
//! spellings, no comments or continuations. The invariant (enforced by
//! property tests in `lol-parser`) is:
//!
//! > `parse(print(ast))` succeeds and prints identically.
//!
//! This gives structural tree equality "modulo spans" for free and makes
//! golden tests readable.

use crate::ast::*;
use crate::types::LolType;
use std::fmt::Write;

/// Pretty-print a whole program.
pub fn print_program(p: &Program) -> String {
    let mut pr = Printer::new();
    match &p.version {
        Some(v) => pr.line(&format!("HAI {v}")),
        None => pr.line("HAI"),
    }
    for inc in &p.includes {
        pr.line(&format!("CAN HAS {}?", inc.lib.sym));
    }
    for s in &p.body {
        pr.stmt(s);
    }
    for f in &p.funcs {
        pr.func(f);
    }
    pr.line("KTHXBYE");
    pr.out
}

/// Pretty-print a single expression (used in diagnostics and tests).
pub fn print_expr(e: &Expr) -> String {
    let mut s = String::new();
    expr(&mut s, e);
    s
}

/// Pretty-print a single statement at indent 0.
pub fn print_stmt(st: &Stmt) -> String {
    let mut pr = Printer::new();
    pr.stmt(st);
    pr.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Self {
        Printer { out: String::new(), indent: 0 }
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn block(&mut self, b: &Block) {
        self.indent += 1;
        for s in b {
            self.stmt(s);
        }
        self.indent -= 1;
    }

    fn func(&mut self, f: &FuncDef) {
        let mut head = format!("HOW IZ I {}", f.name.sym);
        for (i, p) in f.params.iter().enumerate() {
            if i == 0 {
                write!(head, " YR {}", p.sym).unwrap();
            } else {
                write!(head, " AN YR {}", p.sym).unwrap();
            }
        }
        self.line(&head);
        self.block(&f.body);
        self.line("IF U SAY SO");
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Declare(d) => self.line(&decl(d)),
            StmtKind::Assign { target, value } => {
                self.line(&format!("{} R {}", lvalue(target), print_expr(value)));
            }
            StmtKind::ExprStmt(e) => self.line(&print_expr(e)),
            StmtKind::Visible { args, newline } => {
                let mut t = "VISIBLE".to_string();
                for a in args {
                    t.push(' ');
                    expr(&mut t, a);
                }
                if !newline {
                    t.push('!');
                }
                self.line(&t);
            }
            StmtKind::Gimmeh(lv) => self.line(&format!("GIMMEH {}", lvalue(lv))),
            StmtKind::If(ifs) => {
                self.line("O RLY?");
                self.line("YA RLY");
                self.block(&ifs.then_block);
                for m in &ifs.mebbes {
                    self.line(&format!("MEBBE {}", print_expr(&m.cond)));
                    self.block(&m.body);
                }
                if let Some(e) = &ifs.else_block {
                    self.line("NO WAI");
                    self.block(e);
                }
                self.line("OIC");
            }
            StmtKind::Switch(sw) => {
                self.line("WTF?");
                for arm in &sw.arms {
                    self.line(&format!("OMG {}", lit(&arm.value)));
                    self.block(&arm.body);
                }
                if let Some(d) = &sw.default {
                    self.line("OMGWTF");
                    self.block(d);
                }
                self.line("OIC");
            }
            StmtKind::Loop(lp) => {
                let mut head = format!("IM IN YR {}", lp.label.sym);
                if let Some((dir, var)) = &lp.update {
                    let d = match dir {
                        LoopDir::Uppin => "UPPIN",
                        LoopDir::Nerfin => "NERFIN",
                    };
                    write!(head, " {d} YR {}", var.sym).unwrap();
                }
                if let Some((g, e)) = &lp.guard {
                    let gk = match g {
                        GuardKind::Til => "TIL",
                        GuardKind::Wile => "WILE",
                    };
                    write!(head, " {gk} {}", print_expr(e)).unwrap();
                }
                self.line(&head);
                self.block(&lp.body);
                self.line(&format!("IM OUTTA YR {}", lp.label.sym));
            }
            StmtKind::Gtfo => self.line("GTFO"),
            StmtKind::FoundYr(e) => self.line(&format!("FOUND YR {}", print_expr(e))),
            StmtKind::IsNowA { target, ty } => {
                self.line(&format!("{} IS NOW A {}", lvalue(target), ty.keyword()));
            }
            StmtKind::Hugz => self.line("HUGZ"),
            StmtKind::LockAcquire(v) => self.line(&format!("IM SRSLY MESIN WIF {}", varref(v))),
            StmtKind::LockTry(v) => self.line(&format!("IM MESIN WIF {}", varref(v))),
            StmtKind::LockRelease(v) => self.line(&format!("DUN MESIN WIF {}", varref(v))),
            StmtKind::TxtStmt { pe, stmt } => {
                // Simple statements only (enforced by the parser), so the
                // inner statement is guaranteed to be a single line.
                let inner = print_stmt(stmt);
                self.line(&format!("TXT MAH BFF {}, {}", print_expr(pe), inner.trim_end()));
            }
            StmtKind::TxtBlock { pe, body } => {
                self.line(&format!("TXT MAH BFF {} AN STUFF", print_expr(pe)));
                self.block(body);
                self.line("TTYL");
            }
        }
    }
}

fn decl(d: &Decl) -> String {
    let scope = match d.scope {
        DeclScope::I => "I",
        DeclScope::We => "WE",
    };
    let mut t = format!("{scope} HAS A {}", d.name.sym);
    let srsly = if d.srsly { "SRSLY " } else { "" };
    if let Some(size) = &d.array_size {
        let ty = d.ty.unwrap_or(LolType::Noob);
        write!(t, " ITZ {srsly}LOTZ A {} AN THAR IZ {}", ty.plural_keyword(), print_expr(size))
            .unwrap();
    } else if let Some(ty) = d.ty {
        write!(t, " ITZ {srsly}A {}", ty.keyword()).unwrap();
        if let Some(init) = &d.init {
            write!(t, " AN ITZ {}", print_expr(init)).unwrap();
        }
    } else if let Some(init) = &d.init {
        write!(t, " ITZ {}", print_expr(init)).unwrap();
    }
    if d.sharin {
        t.push_str(" AN IM SHARIN IT");
    }
    t
}

fn lvalue(lv: &LValue) -> String {
    match lv {
        LValue::Var(v) => varref(v),
        LValue::Index { arr, idx, .. } => {
            format!("{}'Z {}", varref(arr), print_expr(idx))
        }
    }
}

fn varref(v: &VarRef) -> String {
    let q = match v.locality {
        Locality::Unqualified => "",
        Locality::Mah => "MAH ",
        Locality::Ur => "UR ",
    };
    match &v.name {
        VarName::Named(id) => format!("{q}{}", id.sym),
        VarName::Srs(e) => format!("{q}SRS {}", print_expr(e)),
    }
}

fn lit(l: &Lit) -> String {
    match l {
        Lit::Numbr(n) => n.to_string(),
        Lit::Numbar(f) => {
            // `{:?}` is Rust's shortest round-trip float syntax; ensure a
            // decimal point so the lexer sees a NUMBAR.
            let s = format!("{f:?}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Lit::Yarn(parts) => {
            let mut t = String::from("\"");
            for p in parts {
                match p {
                    YarnPart::Text(txt) => {
                        for c in txt.chars() {
                            match c {
                                ':' => t.push_str("::"),
                                '"' => t.push_str(":\""),
                                '\n' => t.push_str(":)"),
                                '\t' => t.push_str(":>"),
                                '\x07' => t.push_str(":o"),
                                c => t.push(c),
                            }
                        }
                    }
                    YarnPart::Var(id) => {
                        write!(t, ":{{{}}}", id.sym).unwrap();
                    }
                }
            }
            t.push('"');
            t
        }
        Lit::Troof(true) => "WIN".into(),
        Lit::Troof(false) => "FAIL".into(),
        Lit::Noob => "NOOB".into(),
    }
}

fn expr(out: &mut String, e: &Expr) {
    match &e.kind {
        ExprKind::Lit(l) => out.push_str(&lit(l)),
        ExprKind::Var(v) => out.push_str(&varref(v)),
        ExprKind::Index { arr, idx } => {
            out.push_str(&varref(arr));
            out.push_str("'Z ");
            expr(out, idx);
        }
        ExprKind::Bin { op, lhs, rhs } => {
            out.push_str(op.keyword());
            out.push(' ');
            expr(out, lhs);
            out.push_str(" AN ");
            expr(out, rhs);
        }
        ExprKind::Un { op, expr: inner } => {
            out.push_str(op.keyword());
            out.push(' ');
            expr(out, inner);
        }
        ExprKind::Nary { op, args } => {
            out.push_str(op.keyword());
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(" AN");
                }
                out.push(' ');
                expr(out, a);
            }
            out.push_str(" MKAY");
        }
        ExprKind::Cast { expr: inner, ty } => {
            out.push_str("MAEK ");
            expr(out, inner);
            out.push_str(" A ");
            out.push_str(ty.keyword());
        }
        ExprKind::Call { name, args } => {
            write!(out, "I IZ {}", name.sym).unwrap();
            for (i, a) in args.iter().enumerate() {
                if i == 0 {
                    out.push_str(" YR ");
                } else {
                    out.push_str(" AN YR ");
                }
                expr(out, a);
            }
            out.push_str(" MKAY");
        }
        ExprKind::Me => out.push_str("ME"),
        ExprKind::MahFrenz => out.push_str("MAH FRENZ"),
        ExprKind::Whatevr => out.push_str("WHATEVR"),
        ExprKind::Whatevar => out.push_str("WHATEVAR"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    fn e(kind: ExprKind) -> Expr {
        Expr::new(kind, Span::DUMMY)
    }

    fn var(name: &str) -> Expr {
        e(ExprKind::Var(VarRef::named(Ident::synthetic(name))))
    }

    #[test]
    fn prints_sum() {
        let sum = e(ExprKind::Bin {
            op: BinOp::Sum,
            lhs: Box::new(var("x")),
            rhs: Box::new(e(ExprKind::Lit(Lit::Numbr(1)))),
        });
        assert_eq!(print_expr(&sum), "SUM OF x AN 1");
    }

    #[test]
    fn prints_nested_prefix_ops() {
        // SUM OF PRODUKT OF a AN b AN c — unambiguous prefix form.
        let inner = e(ExprKind::Bin {
            op: BinOp::Produkt,
            lhs: Box::new(var("a")),
            rhs: Box::new(var("b")),
        });
        let outer =
            e(ExprKind::Bin { op: BinOp::Sum, lhs: Box::new(inner), rhs: Box::new(var("c")) });
        assert_eq!(print_expr(&outer), "SUM OF PRODUKT OF a AN b AN c");
    }

    #[test]
    fn prints_yarn_with_escapes() {
        let y = e(ExprKind::Lit(Lit::Yarn(vec![
            YarnPart::Text("A:B\"C\nD".into()),
            YarnPart::Var(Ident::synthetic("pe")),
        ])));
        assert_eq!(print_expr(&y), "\"A::B:\"C:)D:{pe}\"");
    }

    #[test]
    fn prints_remote_index() {
        let ix = e(ExprKind::Index {
            arr: VarRef {
                name: VarName::Named(Ident::synthetic("pos_x")),
                locality: Locality::Ur,
                span: Span::DUMMY,
            },
            idx: Box::new(var("j")),
        });
        assert_eq!(print_expr(&ix), "UR pos_x'Z j");
    }

    #[test]
    fn prints_float_with_point() {
        assert_eq!(print_expr(&e(ExprKind::Lit(Lit::Numbar(0.001)))), "0.001");
        assert_eq!(print_expr(&e(ExprKind::Lit(Lit::Numbar(2.0)))), "2.0");
    }

    #[test]
    fn prints_call_and_smoosh() {
        let call =
            e(ExprKind::Call { name: Ident::synthetic("add"), args: vec![var("a"), var("b")] });
        assert_eq!(print_expr(&call), "I IZ add YR a AN YR b MKAY");
        let sm = e(ExprKind::Nary { op: NaryOp::Smoosh, args: vec![var("a"), var("b")] });
        assert_eq!(print_expr(&sm), "SMOOSH a AN b MKAY");
    }

    #[test]
    fn prints_shared_array_decl() {
        let d = Decl {
            scope: DeclScope::We,
            name: Ident::synthetic("arr"),
            ty: Some(LolType::Numbr),
            srsly: true,
            array_size: Some(e(ExprKind::Lit(Lit::Numbr(32)))),
            init: None,
            sharin: true,
            span: Span::DUMMY,
        };
        assert_eq!(decl(&d), "WE HAS A arr ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 32 AN IM SHARIN IT");
    }

    #[test]
    fn prints_full_program_shape() {
        let p = Program {
            version: Some("1.2".into()),
            includes: vec![Include { lib: Ident::synthetic("STDIO"), span: Span::DUMMY }],
            body: vec![
                Stmt::new(StmtKind::Hugz, Span::DUMMY),
                Stmt::new(StmtKind::Visible { args: vec![var("x")], newline: false }, Span::DUMMY),
            ],
            funcs: vec![],
        };
        let s = print_program(&p);
        assert_eq!(s, "HAI 1.2\nCAN HAS STDIO?\nHUGZ\nVISIBLE x!\nKTHXBYE\n");
    }

    #[test]
    fn prints_txt_forms() {
        let st = Stmt::new(
            StmtKind::TxtStmt {
                pe: var("k"),
                stmt: Box::new(Stmt::new(
                    StmtKind::Assign {
                        target: LValue::Var(VarRef {
                            name: VarName::Named(Ident::synthetic("b")),
                            locality: Locality::Ur,
                            span: Span::DUMMY,
                        }),
                        value: var("a"),
                    },
                    Span::DUMMY,
                )),
            },
            Span::DUMMY,
        );
        assert_eq!(print_stmt(&st), "TXT MAH BFF k, UR b R a\n");
    }
}
