//! # lol-sim — a discrete-event mega-scale engine for parallel LOLCODE
//!
//! Every other backend is thread-per-PE, so `n_pes` is capped by what
//! the host OS can schedule — a few thousand at best. The paper's
//! headline artifact is *scaling figures*, and TOP500-scale machines
//! have millions of cores. This crate closes that gap: it executes an
//! SPMD job as a **single-threaded discrete-event simulation**, so a
//! million-PE sweep fits on a laptop.
//!
//! ## How it works
//!
//! Each PE is a resumable [`lol_vm::Machine`] (no OS thread, no stack).
//! The engine pops the next event `(t_ns, tie, pe)` off a binary heap
//! and resumes that PE's machine, which runs until it would block — at
//! an allocation fence, an explicit barrier, or a contended lock (the
//! only three blocking points; see `lol_shmem::substrate`). The
//! substrate parks the PE, remembers why, and schedules wake-ups when
//! the blocking condition resolves: the last PE into a barrier wakes
//! everyone at the synchronized clock, a lock release wakes the next
//! waiter in deterministic FIFO (or ticket) order.
//!
//! Time is the same per-PE *logical clock* the threaded world uses
//! under `ClockMode::Virtual`: each remote access advances the issuing
//! PE's clock by the latency model's delay plus `VIRT_OP_NS`, barriers
//! synchronize clocks to their maximum (explicit ones add
//! `VIRT_BARRIER_NS`), and waiting never advances a clock. Because a
//! PE's clock is a pure function of its own operation sequence, the
//! simulator reproduces the threaded engines' virtual walls, outputs,
//! `CommStats` and trace event streams byte-for-byte on data-race-free
//! programs — the equivalence tests pin this.
//!
//! ## Determinism
//!
//! Events at equal time are ordered by a tie-break key (PE id by
//! default, pinned by tests). For race-free programs *any* tie-break
//! order yields identical outputs and virtual walls — see
//! [`run_module_with_order`] and the property tests — so the canonical
//! order is a presentation choice, not a semantic one.
//!
//! ## Memory
//!
//! State is bounded by *live* per-PE data, not stacks or heap
//! reservations: symmetric heaps are plain `Vec<u64>`s grown lazily to
//! the allocation cursor (the configured `heap_words` stays the
//! diagnostic bound, exactly like the threaded world's `RUN0111`), and
//! a fresh machine is a few empty `Vec`s. A million idle PEs cost on
//! the order of a hundred bytes each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lol_shmem::substrate::{Progress, Substrate};
use lol_shmem::{CommStats, LockKind, PeTrace, ShmemConfig, SpmdError, SymAddr, TraceBuffer};
use lol_trace::{EventKind, VIRT_BARRIER_NS, VIRT_OP_NS};
use lol_vm::machine::{Machine, Step};
use lol_vm::Module;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};

use lol_shmem::rng::PeRng;

/// Owner-word encoding shared with the threaded lock implementation:
/// 0 = free, `pe + 1` = held by `pe`.
#[inline]
fn encode(pe: usize) -> u64 {
    pe as u64 + 1
}

/// Why a PE is not currently runnable (or how its pending call ended).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Block {
    /// Runnable; no substrate call outstanding.
    Run,
    /// Parked inside a barrier episode (explicit or allocation fence).
    BarrierWait,
    /// The episode completed; the next re-issued call consumes this.
    BarrierDone,
    /// Parked on a lock waiter queue.
    LockWait,
    /// The lock was granted; the re-issued `lock` call consumes this.
    LockDone,
}

/// One PE's simulation-side state (the machine itself lives with the
/// event loop).
struct PeState {
    vclock: u64,
    stats: CommStats,
    rng: PeRng,
    tracer: Option<TraceBuffer>,
    block: Block,
    /// Offset claimed by an in-flight `shmalloc`, held across its
    /// allocation fence.
    pending_alloc: Option<u32>,
    alloc_seq: usize,
}

/// PEs waiting on one lock instance, in arrival order; ticket-lock
/// waiters carry their ticket so releases can grant by serving order.
type LockQueue = VecDeque<(usize, Option<u64>)>;

/// Mutable world state shared by all PEs (single-threaded, so one
/// `RefCell` suffices).
struct SimState {
    heap_words: usize,
    /// Per-PE symmetric heaps, grown lazily on first touch.
    heaps: Vec<Vec<u64>>,
    /// Shared symmetric allocation cursor (identical on every PE).
    cursor: usize,
    /// Collective-allocation validation: words requested per call
    /// index, plus the offset each call resolved to.
    alloc_log: Vec<u32>,
    alloc_offsets: Vec<u32>,
    /// PEs parked in the current barrier episode, in arrival order.
    bar_arrived: Vec<usize>,
    bar_explicit: bool,
    /// FIFO waiter queues per lock instance `(owner_pe, word_offset)`;
    /// ticket-lock waiters carry their ticket.
    lock_waiters: HashMap<(usize, u32), LockQueue>,
    pes: Vec<PeState>,
    /// Wake-ups scheduled during the current resume, drained into the
    /// event queue by the engine after each step.
    wakes: Vec<(u64, usize)>,
}

impl SimState {
    /// The heap word at `target`'s instance of `addr`, growing the
    /// heap to the allocation cursor on first touch. Panics with the
    /// same `RUN0100` diagnostic as the threaded heap on addresses
    /// beyond the configured bound.
    fn word(&mut self, target: usize, addr: SymAddr) -> &mut u64 {
        let idx = addr.index();
        if idx >= self.heap_words {
            panic!(
                "O NOES! [RUN0100] SYMMETRIC ADDRESS {} IZ OUTSIDE DA HEAP ({} WORDS)",
                addr.0, self.heap_words
            );
        }
        let need = self.cursor.max(idx + 1);
        let h = &mut self.heaps[target];
        if h.len() < need {
            h.resize(need, 0);
        }
        &mut h[idx]
    }

    /// One acquisition attempt for a *blocking* lock; on failure the
    /// PE is enqueued as a waiter. Mirrors the threaded algorithms:
    /// ticket acquirers always take a ticket, CAS acquirers just look
    /// at the owner word.
    fn blocking_acquire(
        &mut self,
        kind: LockKind,
        me: usize,
        target: usize,
        addr: SymAddr,
    ) -> bool {
        match kind {
            LockKind::SpinCas => {
                if *self.word(target, addr) == 0 {
                    *self.word(target, addr) = encode(me);
                    true
                } else {
                    self.lock_waiters.entry((target, addr.0)).or_default().push_back((me, None));
                    false
                }
            }
            LockKind::Ticket => {
                let t = *self.word(target, addr.offset(1));
                *self.word(target, addr.offset(1)) = t + 1;
                if *self.word(target, addr.offset(2)) == t {
                    *self.word(target, addr) = encode(me);
                    true
                } else {
                    self.lock_waiters.entry((target, addr.0)).or_default().push_back((me, Some(t)));
                    false
                }
            }
        }
    }

    /// Trylock: succeeds only when the lock is immediately available
    /// (a ticket trylock refuses to queue, like the threaded one).
    fn try_acquire(&mut self, kind: LockKind, me: usize, target: usize, addr: SymAddr) -> bool {
        match kind {
            LockKind::SpinCas => {
                if *self.word(target, addr) == 0 {
                    *self.word(target, addr) = encode(me);
                    true
                } else {
                    false
                }
            }
            LockKind::Ticket => {
                let next = *self.word(target, addr.offset(1));
                let serving = *self.word(target, addr.offset(2));
                if next == serving {
                    *self.word(target, addr.offset(1)) = next + 1;
                    *self.word(target, addr) = encode(me);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Release, with the threaded world's `RUN0180`/`RUN0181`
    /// diagnostics; returns the PE the lock was handed to, if any.
    fn release(
        &mut self,
        kind: LockKind,
        me: usize,
        target: usize,
        addr: SymAddr,
    ) -> Option<usize> {
        let holder = *self.word(target, addr);
        if holder != encode(me) {
            if holder == 0 {
                panic!("O NOES! [RUN0180] PE {me} DID DUN MESIN WIF BUT NOBODY WUZ MESIN WIF IT");
            }
            panic!(
                "O NOES! [RUN0181] PE {me} TRIED TO DUN MESIN WIF A LOCK HELD BY PE {}",
                holder - 1
            );
        }
        *self.word(target, addr) = 0;
        match kind {
            LockKind::SpinCas => {
                let g = self.lock_waiters.get_mut(&(target, addr.0)).and_then(|q| q.pop_front());
                if let Some((g, _)) = g {
                    *self.word(target, addr) = encode(g);
                    return Some(g);
                }
                None
            }
            LockKind::Ticket => {
                let serving = *self.word(target, addr.offset(2)) + 1;
                *self.word(target, addr.offset(2)) = serving;
                let g = self.lock_waiters.get_mut(&(target, addr.0)).and_then(|q| {
                    // serving - 1 is the ticket now being served (the
                    // counter we just advanced past was the holder's).
                    q.iter()
                        .position(|&(_, t)| t == Some(serving - 1))
                        .and_then(|pos| q.remove(pos))
                });
                if let Some((g, _)) = g {
                    *self.word(target, addr) = encode(g);
                    return Some(g);
                }
                None
            }
        }
    }
}

/// The simulated job: configuration plus all mutable state.
struct SimWorld {
    cfg: ShmemConfig,
    state: RefCell<SimState>,
}

impl SimWorld {
    fn new(cfg: &ShmemConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        let pes = (0..cfg.n_pes)
            .map(|id| PeState {
                vclock: 0,
                stats: CommStats::default(),
                rng: PeRng::seed_from_u64(
                    cfg.seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
                tracer: if cfg.trace {
                    // Sampled-out PEs keep a zero-capacity buffer so
                    // their events are still *counted* as dropped.
                    let cap = if cfg.traces_pe(id) { cfg.trace_capacity } else { 0 };
                    Some(TraceBuffer::new(id, cap))
                } else {
                    None
                },
                block: Block::Run,
                pending_alloc: None,
                alloc_seq: 0,
            })
            .collect();
        SimWorld {
            state: RefCell::new(SimState {
                heap_words: cfg.heap_words,
                heaps: (0..cfg.n_pes).map(|_| Vec::new()).collect(),
                cursor: 0,
                alloc_log: Vec::new(),
                alloc_offsets: Vec::new(),
                bar_arrived: Vec::new(),
                bar_explicit: false,
                lock_waiters: HashMap::new(),
                pes,
                wakes: Vec::new(),
            }),
            cfg: cfg.clone(),
        }
    }
}

/// One PE's non-blocking substrate handle into the simulated world.
struct SimPe<'w> {
    world: &'w SimWorld,
    id: usize,
}

impl SimPe<'_> {
    /// Advance this PE's logical clock for touching `target` — the
    /// exact accounting rule of the threaded world's virtual mode.
    /// The simulator always accounts on the logical clock (event
    /// ordering needs it); under `ClockMode::Wall` the engine reports
    /// the resulting makespan as the simulated wall time.
    fn charge(&self, st: &mut SimState, target: usize) {
        if target != self.id {
            let delay = self.world.cfg.latency.delay_ns(self.id, target);
            let pe = &mut st.pes[self.id];
            pe.vclock += delay + VIRT_OP_NS;
        }
    }

    fn trace(&self, st: &mut SimState, kind: EventKind, peer: usize, addr: SymAddr, bytes: u32) {
        let now = st.pes[self.id].vclock;
        if let Some(buf) = st.pes[self.id].tracer.as_mut() {
            buf.record(kind, peer, addr.0, bytes, now);
        }
    }

    /// Join the current barrier episode. Returns true when this PE was
    /// the last arriver (the episode completed inline); otherwise the
    /// PE is parked and will be woken at the synchronized clock.
    fn enter_barrier(&self, st: &mut SimState, explicit: bool) -> bool {
        st.pes[self.id].stats.barriers += 1;
        if st.bar_arrived.is_empty() {
            st.bar_explicit = explicit;
        }
        debug_assert_eq!(
            st.bar_explicit, explicit,
            "SPMD programs cannot mix barrier kinds within one episode"
        );
        st.bar_arrived.push(self.id);
        if st.bar_arrived.len() == self.world.cfg.n_pes {
            let arrived = std::mem::take(&mut st.bar_arrived);
            let sync = arrived.iter().map(|&p| st.pes[p].vclock).max().unwrap_or(0)
                + if st.bar_explicit { VIRT_BARRIER_NS } else { 0 };
            for p in arrived {
                st.pes[p].vclock = sync;
                if p != self.id {
                    st.pes[p].block = Block::BarrierDone;
                    st.wakes.push((sync, p));
                }
            }
            true
        } else {
            st.pes[self.id].block = Block::BarrierWait;
            false
        }
    }
}

impl Substrate for SimPe<'_> {
    fn id(&self) -> usize {
        self.id
    }

    fn n_pes(&self) -> usize {
        self.world.cfg.n_pes
    }

    fn shmalloc(&self, words: usize) -> Progress<SymAddr> {
        let mut st = self.world.state.borrow_mut();
        if st.pes[self.id].block == Block::BarrierDone {
            // Re-issued after the allocation fence released us.
            st.pes[self.id].block = Block::Run;
            let off = st.pes[self.id].pending_alloc.take().expect("fence without pending offset");
            return Progress::Ready(SymAddr(off));
        }
        // First attempt: validate the collective call, claim the
        // offset, then enter the allocation fence (counted in the
        // barrier stats, untraced, free in virtual time — identical to
        // the threaded world).
        let seq = st.pes[self.id].alloc_seq;
        if let Some(&prev) = st.alloc_log.get(seq) {
            if prev as usize != words {
                panic!(
                    "O NOES! [RUN0110] COLLECTIVE ALLOCASHUN MISMATCH AT CALL #{seq}: \
                     PE {} WANTS {words} WORDS BUT DA JOB ALREADY AGREED ON {prev}",
                    self.id
                );
            }
        } else {
            st.alloc_log.push(words as u32);
        }
        st.pes[self.id].alloc_seq = seq + 1;
        let offset = if let Some(&off) = st.alloc_offsets.get(seq) {
            off
        } else {
            let off = st.cursor;
            let end = off + words;
            if end > self.world.cfg.heap_words {
                panic!(
                    "O NOES! [RUN0111] NOT ENUF SYMMETRIC HEAP: PE {} NEEDS {end} WORDS \
                     BUT ONLY HAS {} (GROW heap_words)",
                    self.id, self.world.cfg.heap_words
                );
            }
            st.cursor = end;
            st.alloc_offsets.push(off as u32);
            off as u32
        };
        st.pes[self.id].pending_alloc = Some(offset);
        if self.enter_barrier(&mut st, false) {
            st.pes[self.id].block = Block::Run;
            let off = st.pes[self.id].pending_alloc.take().expect("pending offset");
            Progress::Ready(SymAddr(off))
        } else {
            Progress::Pending
        }
    }

    fn put_u64(&self, addr: SymAddr, target: usize, value: u64) {
        let mut st = self.world.state.borrow_mut();
        let pe = &mut st.pes[self.id];
        if target == self.id {
            pe.stats.local_puts += 1;
        } else {
            pe.stats.remote_puts += 1;
        }
        self.charge(&mut st, target);
        *st.word(target, addr) = value;
        if target != self.id {
            self.trace(&mut st, EventKind::Put, target, addr, 8);
        }
    }

    fn get_u64(&self, addr: SymAddr, target: usize) -> u64 {
        let mut st = self.world.state.borrow_mut();
        let pe = &mut st.pes[self.id];
        if target == self.id {
            pe.stats.local_gets += 1;
        } else {
            pe.stats.remote_gets += 1;
        }
        self.charge(&mut st, target);
        let v = *st.word(target, addr);
        if target != self.id {
            self.trace(&mut st, EventKind::Get, target, addr, 8);
        }
        v
    }

    fn barrier(&self) -> Progress<()> {
        let mut st = self.world.state.borrow_mut();
        if st.pes[self.id].block == Block::BarrierDone {
            st.pes[self.id].block = Block::Run;
            self.trace(&mut st, EventKind::BarrierExit, self.id, SymAddr(0), 0);
            return Progress::Ready(());
        }
        self.trace(&mut st, EventKind::BarrierEnter, self.id, SymAddr(0), 0);
        if self.enter_barrier(&mut st, true) {
            self.trace(&mut st, EventKind::BarrierExit, self.id, SymAddr(0), 0);
            Progress::Ready(())
        } else {
            Progress::Pending
        }
    }

    fn lock(&self, addr: SymAddr, target: usize) -> Progress<()> {
        let mut st = self.world.state.borrow_mut();
        if st.pes[self.id].block == Block::LockDone {
            // Granted while parked; the clock does not advance while
            // waiting (same as the threaded virtual accounting).
            st.pes[self.id].block = Block::Run;
            self.trace(&mut st, EventKind::LockAcquire, target, addr, 0);
            return Progress::Ready(());
        }
        st.pes[self.id].stats.lock_acquires += 1;
        self.charge(&mut st, target);
        if st.blocking_acquire(self.world.cfg.lock, self.id, target, addr) {
            self.trace(&mut st, EventKind::LockAcquire, target, addr, 0);
            Progress::Ready(())
        } else {
            st.pes[self.id].block = Block::LockWait;
            Progress::Pending
        }
    }

    fn try_lock(&self, addr: SymAddr, target: usize) -> bool {
        let mut st = self.world.state.borrow_mut();
        st.pes[self.id].stats.lock_tries += 1;
        self.charge(&mut st, target);
        let got = st.try_acquire(self.world.cfg.lock, self.id, target, addr);
        self.trace(&mut st, EventKind::LockTry, target, addr, got as u32);
        got
    }

    fn unlock(&self, addr: SymAddr, target: usize) {
        let mut st = self.world.state.borrow_mut();
        st.pes[self.id].stats.lock_releases += 1;
        self.charge(&mut st, target);
        if let Some(g) = st.release(self.world.cfg.lock, self.id, target, addr) {
            st.pes[g].block = Block::LockDone;
            // The grantee resumes at the hand-off, but its own clock
            // is untouched — waiting is free in virtual time.
            let t = st.pes[g].vclock.max(st.pes[self.id].vclock);
            st.wakes.push((t, g));
        }
        self.trace(&mut st, EventKind::LockRelease, target, addr, 0);
    }

    fn rand_i64(&self) -> i64 {
        let mut st = self.world.state.borrow_mut();
        st.pes[self.id].rng.gen_i64_below(1i64 << 31)
    }

    fn rand_f64(&self) -> f64 {
        let mut st = self.world.state.borrow_mut();
        st.pes[self.id].rng.gen_unit_f64()
    }
}

/// Everything a finished simulation knows, in PE order.
#[derive(Debug)]
pub struct SimReport {
    /// Captured `VISIBLE` output per PE.
    pub outputs: Vec<String>,
    /// Communication statistics per PE.
    pub stats: Vec<CommStats>,
    /// Trace streams per PE (empty `None`s when tracing is off).
    pub traces: Vec<Option<PeTrace>>,
    /// Final logical clock per PE.
    pub virtual_ns: Vec<u64>,
    /// The job's simulated makespan (maximum final clock).
    pub makespan_ns: u64,
    /// Discrete events processed (diagnostics: resume segments).
    pub events: u64,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "PE panicked with a non-string payload".to_string()
    }
}

/// Run `module` on `cfg.n_pes` simulated PEs with the canonical
/// tie-break order (PE id).
pub fn run_module(
    module: &Module,
    cfg: &ShmemConfig,
    input: &[String],
) -> Result<SimReport, SpmdError> {
    run_module_with_order(module, cfg, input, &|pe| pe as u64)
}

/// Like [`run_module`], with a custom tie-break key for events at
/// equal `t_ns`. Exists for the determinism property tests: on
/// race-free programs every order function yields identical outputs
/// and virtual walls.
pub fn run_module_with_order(
    module: &Module,
    cfg: &ShmemConfig,
    input: &[String],
    order: &dyn Fn(usize) -> u64,
) -> Result<SimReport, SpmdError> {
    let world = SimWorld::new(cfg);
    let n = cfg.n_pes;
    let mut machines: Vec<Machine<'_>> = (0..n).map(|_| Machine::new(module, input)).collect();
    let mut outputs = vec![String::new(); n];
    let mut done = vec![false; n];
    let mut n_done = 0usize;
    let mut events = 0u64;
    // Min-heap over (t_ns, tie, pe): `Reverse` flips the max-heap.
    let mut queue: BinaryHeap<Reverse<(u64, u64, usize)>> =
        (0..n).map(|pe| Reverse((0u64, order(pe), pe))).collect();
    while let Some(Reverse((_, _, pe))) = queue.pop() {
        events += 1;
        let sub = SimPe { world: &world, id: pe };
        let machine = &mut machines[pe];
        let step = catch_unwind(AssertUnwindSafe(|| machine.resume(&sub)));
        match step {
            Err(payload) => {
                // Substrate diagnostics (heap bounds, allocation
                // mismatch, lock misuse) panic exactly like the
                // threaded world; the first one aborts the job.
                return Err(SpmdError { pe, message: panic_message(payload) });
            }
            Ok(Err(e)) => return Err(SpmdError { pe, message: e.to_string() }),
            Ok(Ok(Step::Done)) => {
                outputs[pe] = machines[pe].take_output();
                done[pe] = true;
                n_done += 1;
            }
            Ok(Ok(Step::Blocked)) => {
                debug_assert_ne!(
                    world.state.borrow().pes[pe].block,
                    Block::Run,
                    "machine blocked but the substrate did not park PE {pe}"
                );
            }
        }
        let mut st = world.state.borrow_mut();
        for (t, p) in st.wakes.drain(..) {
            queue.push(Reverse((t, order(p), p)));
        }
    }
    if n_done < n {
        // The queue drained with parked PEs left: a deadlock, detected
        // *exactly* instead of by the threaded world's watchdog — one
        // of the perks of simulation.
        let st = world.state.borrow();
        let pe = (0..n).find(|&p| !done[p]).expect("some PE is unfinished");
        let what = match st.pes[pe].block {
            Block::LockWait | Block::LockDone => "IM SRSLY MESIN WIF (lock)",
            _ => "HUGZ (barrier)",
        };
        return Err(SpmdError {
            pe,
            message: format!(
                "O NOES! [RUN0191] PE {pe} WAITED 2 LONG AT {what} — SUM PE NEVER SHOWED UP \
                 (DEADLOCK?)"
            ),
        });
    }
    let mut st = world.state.borrow_mut();
    let stats: Vec<CommStats> = st.pes.iter().map(|p| p.stats).collect();
    let virtual_ns: Vec<u64> = st.pes.iter().map(|p| p.vclock).collect();
    let makespan_ns = virtual_ns.iter().copied().max().unwrap_or(0);
    let traces: Vec<Option<PeTrace>> = st
        .pes
        .iter_mut()
        .map(|p| {
            let end = p.vclock;
            p.tracer.take().map(|buf| buf.finish(end))
        })
        .collect();
    Ok(SimReport { outputs, stats, traces, virtual_ns, makespan_ns, events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lol_ast::{BinOp, LolType};
    use lol_interp::Value;
    use lol_shmem::{run_spmd, ClockMode, LatencyModel};
    use lol_vm::ops::{Chunk, Op};

    fn cfg(n: usize) -> ShmemConfig {
        ShmemConfig::new(n).clock(ClockMode::Virtual)
    }

    /// Hand-assembled ring exchange: every PE puts `me * 100` to its
    /// right neighbour, barriers, prints what landed.
    fn ring_module() -> Module {
        Module {
            consts: vec![Value::Numbr(1), Value::Numbr(100)],
            main: Chunk {
                code: vec![
                    Op::Me,
                    Op::Const(0),
                    Op::Bin(BinOp::Sum),
                    Op::MahFrenz,
                    Op::Bin(BinOp::Mod),
                    Op::PushBff,
                    Op::Me,
                    Op::Const(1),
                    Op::Bin(BinOp::Produkt),
                    Op::SharedStore { off: 0, ty: LolType::Numbr, remote: true },
                    Op::PopBff,
                    Op::Barrier,
                    Op::SharedLoad { off: 0, ty: LolType::Numbr, remote: false },
                    Op::Visible { argc: 1, newline: true },
                    Op::Halt,
                ],
                n_slots: 1,
                n_arrays: 0,
            },
            funcs: vec![],
            shared_words: 1,
        }
    }

    /// Hand-assembled lock counter: every PE locks PE 0's lock cell
    /// (words 0..3), bumps the counter at word 3, then prints it after
    /// a barrier.
    fn lock_module() -> Module {
        Module {
            consts: vec![Value::Numbr(0), Value::Numbr(1)],
            main: Chunk {
                code: vec![
                    Op::Const(0),
                    Op::PushBff,
                    Op::LockAcquire { off: 0, remote: true },
                    Op::SharedLoad { off: 3, ty: LolType::Numbr, remote: true },
                    Op::Const(1),
                    Op::Bin(BinOp::Sum),
                    Op::SharedStore { off: 3, ty: LolType::Numbr, remote: true },
                    Op::LockRelease { off: 0, remote: true },
                    Op::PopBff,
                    Op::Barrier,
                    Op::Const(0),
                    Op::PushBff,
                    Op::SharedLoad { off: 3, ty: LolType::Numbr, remote: true },
                    Op::PopBff,
                    Op::Visible { argc: 1, newline: true },
                    Op::Halt,
                ],
                n_slots: 1,
                n_arrays: 0,
            },
            funcs: vec![],
            shared_words: 4,
        }
    }

    /// Threaded reference run of the same module, collecting the same
    /// observables.
    fn threaded(module: &Module, cfg: ShmemConfig) -> (Vec<String>, Vec<CommStats>, Vec<u64>) {
        let r = run_spmd(cfg, |pe| {
            let out = lol_vm::run_on_pe(module, pe, &[]).unwrap();
            (out, pe.stats(), pe.virtual_ns())
        })
        .unwrap();
        let mut outs = Vec::new();
        let mut stats = Vec::new();
        let mut clocks = Vec::new();
        for (o, s, c) in r {
            outs.push(o);
            stats.push(s);
            clocks.push(c);
        }
        (outs, stats, clocks)
    }

    #[test]
    fn ring_matches_threaded_vm_exactly() {
        let m = ring_module();
        let c = cfg(8).latency(LatencyModel::Uniform { remote_ns: 1000 });
        let sim = run_module(&m, &c, &[]).unwrap();
        let (outs, stats, clocks) = threaded(&m, c);
        assert_eq!(sim.outputs, outs);
        assert_eq!(sim.stats, stats);
        assert_eq!(sim.virtual_ns, clocks);
        assert_eq!(sim.outputs[0], "700\n");
        assert_eq!(sim.makespan_ns, 1000 + VIRT_OP_NS + VIRT_BARRIER_NS);
    }

    #[test]
    fn lock_counter_matches_threaded_vm_for_both_kinds() {
        for kind in LockKind::ALL {
            let m = lock_module();
            let c = cfg(4).lock(kind).latency(LatencyModel::epiphany16());
            let sim = run_module(&m, &c, &[]).unwrap();
            let (outs, stats, clocks) = threaded(&m, c);
            assert_eq!(sim.outputs, outs, "{kind:?}");
            assert_eq!(sim.stats, stats, "{kind:?}");
            assert_eq!(sim.virtual_ns, clocks, "{kind:?}");
            assert_eq!(sim.outputs[3], "4\n");
        }
    }

    #[test]
    fn traces_match_threaded_signatures() {
        let m = ring_module();
        let c = cfg(4).trace(true);
        let sim = run_module(&m, &c, &[]).unwrap();
        let threaded_traces = run_spmd(c, |pe| {
            lol_vm::run_on_pe(&m, pe, &[]).unwrap();
            pe.take_trace().unwrap()
        })
        .unwrap();
        for (s, t) in sim.traces.iter().zip(&threaded_traces) {
            assert_eq!(s.as_ref().unwrap().signature(), t.signature());
        }
    }

    #[test]
    fn any_tie_break_order_is_equivalent() {
        let m = lock_module();
        let c = cfg(6).latency(LatencyModel::Uniform { remote_ns: 700 });
        let canonical = run_module(&m, &c, &[]).unwrap();
        let orders: [&dyn Fn(usize) -> u64; 3] =
            [&|pe| 1000 - pe as u64, &|pe| (pe as u64).wrapping_mul(0x9E37_79B9) & 0xFFFF, &|_| 0];
        for (i, order) in orders.iter().enumerate() {
            let r = run_module_with_order(&m, &c, &[], order).unwrap();
            assert_eq!(r.outputs, canonical.outputs, "order {i}");
            assert_eq!(r.virtual_ns, canonical.virtual_ns, "order {i}");
            assert_eq!(r.makespan_ns, canonical.makespan_ns, "order {i}");
        }
    }

    #[test]
    fn deadlock_is_detected_exactly() {
        // PE 0 skips the barrier (its falsy id jumps over it).
        let m = Module {
            consts: vec![],
            main: Chunk {
                code: vec![Op::Me, Op::JumpIfFalse(3), Op::Barrier, Op::Halt],
                n_slots: 1,
                n_arrays: 0,
            },
            funcs: vec![],
            shared_words: 0,
        };
        let err = run_module(&m, &cfg(3), &[]).unwrap_err();
        assert!(err.message.contains("RUN0191"), "{}", err.message);
        assert!(err.message.contains("HUGZ"), "{}", err.message);
    }

    #[test]
    fn lock_misuse_is_diagnosed_like_the_threaded_world() {
        let m = Module {
            consts: vec![],
            main: Chunk {
                code: vec![Op::LockRelease { off: 0, remote: false }, Op::Halt],
                n_slots: 1,
                n_arrays: 0,
            },
            funcs: vec![],
            shared_words: 3,
        };
        let err = run_module(&m, &cfg(2), &[]).unwrap_err();
        assert!(err.message.contains("RUN0180"), "{}", err.message);
    }

    #[test]
    fn mega_scale_65536_pes() {
        let n = 65_536;
        let m = ring_module();
        let sim = run_module(&m, &cfg(n), &[]).unwrap();
        assert_eq!(sim.outputs.len(), n);
        assert_eq!(sim.outputs[0], format!("{}\n", (n - 1) * 100));
        assert_eq!(sim.outputs[n - 1], format!("{}\n", (n - 2) * 100));
        // Off-latency: one remote put (1ns) then the explicit barrier.
        assert_eq!(sim.makespan_ns, VIRT_OP_NS + VIRT_BARRIER_NS);
        // Three segments per PE (start→fence, fence→barrier, →done),
        // minus one per barrier episode: the last arriver continues
        // inline within its own event.
        assert_eq!(sim.events, 3 * n as u64 - 2);
    }

    /// The headline scale: 2^20 > 1,000,000 PEs on one thread. Run
    /// with `cargo test --release -p lol-sim -- --ignored`.
    #[test]
    #[ignore = "release-mode mega-scale run (~1M PEs)"]
    fn mega_scale_one_million_pes() {
        let n = 1 << 20;
        let m = ring_module();
        let sim = run_module(&m, &cfg(n), &[]).unwrap();
        assert_eq!(sim.outputs.len(), n);
        for pe in [0usize, 1, n / 2, n - 1] {
            let left = (pe + n - 1) % n;
            assert_eq!(sim.outputs[pe], format!("{}\n", left * 100), "PE {pe}");
        }
        assert_eq!(sim.makespan_ns, VIRT_OP_NS + VIRT_BARRIER_NS);
        assert_eq!(sim.events, 3 * n as u64 - 2);
    }
}
