//! # lol-sim — a discrete-event mega-scale engine for parallel LOLCODE
//!
//! Every other backend is thread-per-PE, so `n_pes` is capped by what
//! the host OS can schedule — a few thousand at best. The paper's
//! headline artifact is *scaling figures*, and TOP500-scale machines
//! have millions of cores. This crate closes that gap: it executes an
//! SPMD job as a discrete-event simulation — sequentially by default,
//! and on a bounded pool of shard workers (`sim_jobs`) at mega scale —
//! so a million-PE sweep fits on a laptop and uses its cores.
//!
//! ## How it works
//!
//! Each PE is a resumable [`lol_vm::Machine`] (no OS thread, no
//! stack). The sequential scheduler resumes the PE with the earliest
//! pending event `(t_ns, tie, pe)`; the machine runs until it would
//! block — at an allocation fence, an explicit barrier, or a
//! contended lock (the only three blocking points; see
//! `lol_shmem::substrate`). The substrate parks the PE, remembers
//! why, and the scheduler wakes it when the blocking condition
//! resolves.
//!
//! Barrier episodes are O(1) scheduler work: arrivals bump an episode
//! counter (plus a running clock max), and the episode's completion
//! releases the whole cohort through a single release cursor — PEs
//! re-synchronize their clocks lazily when next resumed, so no
//! per-PE wake events ever touch the event heap. The heap carries
//! only lock hand-offs.
//!
//! The sharded scheduler ([`run_module_sharded`], picked automatically
//! by [`run_module`] for big lock-free jobs) partitions PEs across
//! workers and runs whole barrier-to-barrier windows in parallel; see
//! [`par`] for the determinism argument. `sim_jobs = 1` takes the
//! exact sequential path.
//!
//! Time is the same per-PE *logical clock* the threaded world uses
//! under `ClockMode::Virtual`: each remote access advances the issuing
//! PE's clock by the latency model's delay plus `VIRT_OP_NS`, barriers
//! synchronize clocks to their maximum (explicit ones add
//! `VIRT_BARRIER_NS`), and waiting never advances a clock. Because a
//! PE's clock is a pure function of its own operation sequence, the
//! simulator reproduces the threaded engines' virtual walls, outputs,
//! `CommStats` and trace event streams byte-for-byte on data-race-free
//! programs — the equivalence tests pin this.
//!
//! ## Determinism
//!
//! Events at equal time are ordered by a tie-break key (PE id by
//! default, pinned by tests). For race-free programs *any* tie-break
//! order — and any shard assignment — yields identical outputs and
//! virtual walls: see [`run_module_with_order`],
//! [`run_module_sharded`] and the property tests in
//! `tests/sim_determinism.rs`. The canonical order is a presentation
//! choice, not a semantic one.
//!
//! ## Memory
//!
//! State is bounded by *live* per-PE data, not stacks or heap
//! reservations: symmetric heaps are grown to the allocation cursor
//! (the configured `heap_words` stays the diagnostic bound, exactly
//! like the threaded world's `RUN0111`), per-PE bookkeeping is kept
//! in parallel arrays (SoA) rather than one struct per PE, and a
//! fresh machine allocates nothing. A million idle PEs cost on the
//! order of a hundred bytes each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lol_shmem::shard::ShardPlan;
use lol_shmem::substrate::{Progress, Substrate};
use lol_shmem::{CommStats, LockKind, PeTrace, ShmemConfig, SpmdError, SymAddr, TraceBuffer};
use lol_trace::{EventKind, VIRT_BARRIER_NS, VIRT_OP_NS};
use lol_vm::machine::{Machine, Step};
use lol_vm::ops::Op;
use lol_vm::Module;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};

use lol_shmem::rng::PeRng;

pub mod par;

/// Owner-word encoding shared with the threaded lock implementation:
/// 0 = free, `pe + 1` = held by `pe`.
#[inline]
fn encode(pe: usize) -> u64 {
    pe as u64 + 1
}

/// Why a PE is not currently runnable (or how its pending call ended).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Block {
    /// Runnable; no substrate call outstanding.
    Run,
    /// Parked inside a barrier episode (explicit or allocation fence).
    BarrierWait,
    /// The episode completed; the next re-issued call consumes this.
    BarrierDone,
    /// Parked on a lock waiter queue.
    LockWait,
    /// The lock was granted; the re-issued `lock` call consumes this.
    LockDone,
}

/// PEs waiting on one lock instance, in arrival order; ticket-lock
/// waiters carry their ticket so releases can grant by serving order.
type LockQueue = VecDeque<(usize, Option<u64>)>;

/// Mutable world state shared by all PEs (single-threaded, so one
/// `RefCell` suffices). Per-PE bookkeeping is SoA — parallel arrays
/// indexed by PE — so a million idle PEs stay cache- and
/// footprint-cheap.
struct SimState {
    heap_words: usize,
    /// Per-PE symmetric heaps, grown lazily on first touch.
    heaps: Vec<Vec<u64>>,
    /// Shared symmetric allocation cursor (identical on every PE).
    cursor: usize,
    /// Collective-allocation validation: words requested per call
    /// index, plus the offset each call resolved to. Doubles as the
    /// blocked-op scratch: a PE re-issuing `shmalloc` after its fence
    /// reads its offset back from here instead of carrying a
    /// per-PE pending slot.
    alloc_log: Vec<u32>,
    alloc_offsets: Vec<u32>,
    /// Barrier episode accounting — O(1) per arrival: a count, a
    /// running clock max, and the episode kind. Completion flips
    /// `episode_done`; the engine releases the cohort with a single
    /// cursor instead of one wake event per parked PE.
    bar_count: usize,
    bar_max: u64,
    bar_explicit: bool,
    episode_done: bool,
    /// FIFO waiter queues per lock instance `(owner_pe, word_offset)`;
    /// ticket-lock waiters carry their ticket.
    lock_waiters: HashMap<(usize, u32), LockQueue>,
    // ---- per-PE bookkeeping, SoA ----
    vclock: Vec<u64>,
    stats: Vec<CommStats>,
    rng: Vec<PeRng>,
    /// One buffer per PE when tracing is on (zero-capacity for
    /// sampled-out PEs so their events still *count* as dropped);
    /// empty when tracing is off — no per-PE `Option` overhead.
    tracers: Vec<TraceBuffer>,
    block: Vec<Block>,
    alloc_seq: Vec<u32>,
    /// Lock-grant wake-ups scheduled during the current resume,
    /// drained into the event queue by the engine after each step.
    wakes: Vec<(u64, usize)>,
}

impl SimState {
    /// The heap word at `target`'s instance of `addr`, growing the
    /// heap to the allocation cursor on first touch. Panics with the
    /// same `RUN0100` diagnostic as the threaded heap on addresses
    /// beyond the configured bound.
    fn word(&mut self, target: usize, addr: SymAddr) -> &mut u64 {
        let idx = addr.index();
        if idx >= self.heap_words {
            panic!(
                "O NOES! [RUN0100] SYMMETRIC ADDRESS {} IZ OUTSIDE DA HEAP ({} WORDS)",
                addr.0, self.heap_words
            );
        }
        let need = self.cursor.max(idx + 1);
        let h = &mut self.heaps[target];
        if h.len() < need {
            h.resize(need, 0);
        }
        &mut h[idx]
    }

    /// One acquisition attempt for a *blocking* lock; on failure the
    /// PE is enqueued as a waiter. Mirrors the threaded algorithms:
    /// ticket acquirers always take a ticket, CAS acquirers just look
    /// at the owner word.
    fn blocking_acquire(
        &mut self,
        kind: LockKind,
        me: usize,
        target: usize,
        addr: SymAddr,
    ) -> bool {
        match kind {
            LockKind::SpinCas => {
                if *self.word(target, addr) == 0 {
                    *self.word(target, addr) = encode(me);
                    true
                } else {
                    self.lock_waiters.entry((target, addr.0)).or_default().push_back((me, None));
                    false
                }
            }
            LockKind::Ticket => {
                let t = *self.word(target, addr.offset(1));
                *self.word(target, addr.offset(1)) = t + 1;
                if *self.word(target, addr.offset(2)) == t {
                    *self.word(target, addr) = encode(me);
                    true
                } else {
                    self.lock_waiters.entry((target, addr.0)).or_default().push_back((me, Some(t)));
                    false
                }
            }
        }
    }

    /// Trylock: succeeds only when the lock is immediately available
    /// (a ticket trylock refuses to queue, like the threaded one).
    fn try_acquire(&mut self, kind: LockKind, me: usize, target: usize, addr: SymAddr) -> bool {
        match kind {
            LockKind::SpinCas => {
                if *self.word(target, addr) == 0 {
                    *self.word(target, addr) = encode(me);
                    true
                } else {
                    false
                }
            }
            LockKind::Ticket => {
                let next = *self.word(target, addr.offset(1));
                let serving = *self.word(target, addr.offset(2));
                if next == serving {
                    *self.word(target, addr.offset(1)) = next + 1;
                    *self.word(target, addr) = encode(me);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Release, with the threaded world's `RUN0180`/`RUN0181`
    /// diagnostics; returns the PE the lock was handed to, if any.
    fn release(
        &mut self,
        kind: LockKind,
        me: usize,
        target: usize,
        addr: SymAddr,
    ) -> Option<usize> {
        let holder = *self.word(target, addr);
        if holder != encode(me) {
            if holder == 0 {
                panic!("O NOES! [RUN0180] PE {me} DID DUN MESIN WIF BUT NOBODY WUZ MESIN WIF IT");
            }
            panic!(
                "O NOES! [RUN0181] PE {me} TRIED TO DUN MESIN WIF A LOCK HELD BY PE {}",
                holder - 1
            );
        }
        *self.word(target, addr) = 0;
        match kind {
            LockKind::SpinCas => {
                let g = self.lock_waiters.get_mut(&(target, addr.0)).and_then(|q| q.pop_front());
                if let Some((g, _)) = g {
                    *self.word(target, addr) = encode(g);
                    return Some(g);
                }
                None
            }
            LockKind::Ticket => {
                let serving = *self.word(target, addr.offset(2)) + 1;
                *self.word(target, addr.offset(2)) = serving;
                let g = self.lock_waiters.get_mut(&(target, addr.0)).and_then(|q| {
                    // serving - 1 is the ticket now being served (the
                    // counter we just advanced past was the holder's).
                    q.iter()
                        .position(|&(_, t)| t == Some(serving - 1))
                        .and_then(|pos| q.remove(pos))
                });
                if let Some((g, _)) = g {
                    *self.word(target, addr) = encode(g);
                    return Some(g);
                }
                None
            }
        }
    }
}

/// The simulated job: configuration plus all mutable state.
struct SimWorld {
    cfg: ShmemConfig,
    state: RefCell<SimState>,
}

/// Build the per-PE trace buffers for a configuration: one per PE
/// when tracing (zero-capacity for sampled-out PEs), none otherwise.
fn make_tracers(cfg: &ShmemConfig) -> Vec<TraceBuffer> {
    if !cfg.trace {
        return Vec::new();
    }
    (0..cfg.n_pes)
        .map(|id| {
            let cap = if cfg.traces_pe(id) { cfg.trace_capacity } else { 0 };
            TraceBuffer::new(id, cap)
        })
        .collect()
}

/// The per-PE RNG, seeded identically on every scheduler.
fn make_rng(cfg: &ShmemConfig, id: usize) -> PeRng {
    PeRng::seed_from_u64(cfg.seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

impl SimWorld {
    fn new(cfg: &ShmemConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        let n = cfg.n_pes;
        SimWorld {
            state: RefCell::new(SimState {
                heap_words: cfg.heap_words,
                heaps: (0..n).map(|_| Vec::new()).collect(),
                cursor: 0,
                alloc_log: Vec::new(),
                alloc_offsets: Vec::new(),
                bar_count: 0,
                bar_max: 0,
                bar_explicit: false,
                episode_done: false,
                lock_waiters: HashMap::new(),
                vclock: vec![0; n],
                stats: vec![CommStats::default(); n],
                rng: (0..n).map(|id| make_rng(cfg, id)).collect(),
                tracers: make_tracers(cfg),
                block: vec![Block::Run; n],
                alloc_seq: vec![0; n],
                wakes: Vec::new(),
            }),
            cfg: cfg.clone(),
        }
    }
}

/// One PE's non-blocking substrate handle into the simulated world.
struct SimPe<'w> {
    world: &'w SimWorld,
    id: usize,
}

impl SimPe<'_> {
    /// Advance this PE's logical clock for touching `target` — the
    /// exact accounting rule of the threaded world's virtual mode.
    /// The simulator always accounts on the logical clock (event
    /// ordering needs it); under `ClockMode::Wall` the engine reports
    /// the resulting makespan as the simulated wall time.
    fn charge(&self, st: &mut SimState, target: usize) {
        if target != self.id {
            let delay = self.world.cfg.latency.delay_ns(self.id, target);
            st.vclock[self.id] += delay + VIRT_OP_NS;
        }
    }

    fn trace(&self, st: &mut SimState, kind: EventKind, peer: usize, addr: SymAddr, bytes: u32) {
        if st.tracers.is_empty() {
            return;
        }
        let now = st.vclock[self.id];
        st.tracers[self.id].record(kind, peer, addr.0, bytes, now);
    }

    /// Join the current barrier episode. The PE always parks — even
    /// the last arriver — so the event accounting is identical on
    /// every scheduler; completion flips `episode_done` and the
    /// engine releases the whole cohort through one cursor.
    fn enter_barrier(&self, st: &mut SimState, explicit: bool) {
        st.stats[self.id].barriers += 1;
        if st.bar_count == 0 {
            st.bar_explicit = explicit;
        }
        debug_assert_eq!(
            st.bar_explicit, explicit,
            "SPMD programs cannot mix barrier kinds within one episode"
        );
        st.bar_count += 1;
        st.bar_max = st.bar_max.max(st.vclock[self.id]);
        st.block[self.id] = Block::BarrierWait;
        if st.bar_count == self.world.cfg.n_pes {
            st.episode_done = true;
        }
    }
}

impl Substrate for SimPe<'_> {
    fn id(&self) -> usize {
        self.id
    }

    fn n_pes(&self) -> usize {
        self.world.cfg.n_pes
    }

    fn shmalloc(&self, words: usize) -> Progress<SymAddr> {
        let mut st = self.world.state.borrow_mut();
        if st.block[self.id] == Block::BarrierDone {
            // Re-issued after the allocation fence released us: the
            // offset for our call is in the shared allocation log.
            st.block[self.id] = Block::Run;
            let seq = st.alloc_seq[self.id] as usize - 1;
            return Progress::Ready(SymAddr(st.alloc_offsets[seq]));
        }
        // First attempt: validate the collective call, claim the
        // offset, then enter the allocation fence (counted in the
        // barrier stats, untraced, free in virtual time — identical to
        // the threaded world).
        let seq = st.alloc_seq[self.id] as usize;
        if let Some(&prev) = st.alloc_log.get(seq) {
            if prev as usize != words {
                panic!(
                    "O NOES! [RUN0110] COLLECTIVE ALLOCASHUN MISMATCH AT CALL #{seq}: \
                     PE {} WANTS {words} WORDS BUT DA JOB ALREADY AGREED ON {prev}",
                    self.id
                );
            }
        } else {
            st.alloc_log.push(words as u32);
        }
        st.alloc_seq[self.id] = seq as u32 + 1;
        if st.alloc_offsets.get(seq).is_none() {
            let off = st.cursor;
            let end = off + words;
            if end > self.world.cfg.heap_words {
                panic!(
                    "O NOES! [RUN0111] NOT ENUF SYMMETRIC HEAP: PE {} NEEDS {end} WORDS \
                     BUT ONLY HAS {} (GROW heap_words)",
                    self.id, self.world.cfg.heap_words
                );
            }
            st.cursor = end;
            st.alloc_offsets.push(off as u32);
        }
        self.enter_barrier(&mut st, false);
        Progress::Pending
    }

    fn put_u64(&self, addr: SymAddr, target: usize, value: u64) {
        let mut st = self.world.state.borrow_mut();
        if target == self.id {
            st.stats[self.id].local_puts += 1;
        } else {
            st.stats[self.id].remote_puts += 1;
        }
        self.charge(&mut st, target);
        *st.word(target, addr) = value;
        if target != self.id {
            self.trace(&mut st, EventKind::Put, target, addr, 8);
        }
    }

    fn get_u64(&self, addr: SymAddr, target: usize) -> u64 {
        let mut st = self.world.state.borrow_mut();
        if target == self.id {
            st.stats[self.id].local_gets += 1;
        } else {
            st.stats[self.id].remote_gets += 1;
        }
        self.charge(&mut st, target);
        let v = *st.word(target, addr);
        if target != self.id {
            self.trace(&mut st, EventKind::Get, target, addr, 8);
        }
        v
    }

    fn barrier(&self) -> Progress<()> {
        let mut st = self.world.state.borrow_mut();
        if st.block[self.id] == Block::BarrierDone {
            st.block[self.id] = Block::Run;
            self.trace(&mut st, EventKind::BarrierExit, self.id, SymAddr(0), 0);
            return Progress::Ready(());
        }
        self.trace(&mut st, EventKind::BarrierEnter, self.id, SymAddr(0), 0);
        self.enter_barrier(&mut st, true);
        Progress::Pending
    }

    fn lock(&self, addr: SymAddr, target: usize) -> Progress<()> {
        let mut st = self.world.state.borrow_mut();
        if st.block[self.id] == Block::LockDone {
            // Granted while parked; the clock does not advance while
            // waiting (same as the threaded virtual accounting).
            st.block[self.id] = Block::Run;
            self.trace(&mut st, EventKind::LockAcquire, target, addr, 0);
            return Progress::Ready(());
        }
        st.stats[self.id].lock_acquires += 1;
        self.charge(&mut st, target);
        if st.blocking_acquire(self.world.cfg.lock, self.id, target, addr) {
            self.trace(&mut st, EventKind::LockAcquire, target, addr, 0);
            Progress::Ready(())
        } else {
            st.block[self.id] = Block::LockWait;
            Progress::Pending
        }
    }

    fn try_lock(&self, addr: SymAddr, target: usize) -> bool {
        let mut st = self.world.state.borrow_mut();
        st.stats[self.id].lock_tries += 1;
        self.charge(&mut st, target);
        let got = st.try_acquire(self.world.cfg.lock, self.id, target, addr);
        self.trace(&mut st, EventKind::LockTry, target, addr, got as u32);
        got
    }

    fn unlock(&self, addr: SymAddr, target: usize) {
        let mut st = self.world.state.borrow_mut();
        st.stats[self.id].lock_releases += 1;
        self.charge(&mut st, target);
        if let Some(g) = st.release(self.world.cfg.lock, self.id, target, addr) {
            st.block[g] = Block::LockDone;
            // The grantee resumes at the hand-off, but its own clock
            // is untouched — waiting is free in virtual time.
            let t = st.vclock[g].max(st.vclock[self.id]);
            st.wakes.push((t, g));
        }
        self.trace(&mut st, EventKind::LockRelease, target, addr, 0);
    }

    fn rand_i64(&self) -> i64 {
        let mut st = self.world.state.borrow_mut();
        st.rng[self.id].gen_i64_below(1i64 << 31)
    }

    fn rand_f64(&self) -> f64 {
        let mut st = self.world.state.borrow_mut();
        st.rng[self.id].gen_unit_f64()
    }
}

/// Everything a finished simulation knows, in PE order.
#[derive(Debug)]
pub struct SimReport {
    /// Captured `VISIBLE` output per PE.
    pub outputs: Vec<String>,
    /// Communication statistics per PE.
    pub stats: Vec<CommStats>,
    /// Trace streams per PE (empty `None`s when tracing is off).
    pub traces: Vec<Option<PeTrace>>,
    /// Final logical clock per PE.
    pub virtual_ns: Vec<u64>,
    /// The job's simulated makespan (maximum final clock).
    pub makespan_ns: u64,
    /// Discrete events processed (diagnostics: resume segments). The
    /// count is scheduler-independent: every PE contributes one
    /// segment per barrier episode it passes plus one final segment,
    /// plus one per lock wait it is granted out of.
    pub events: u64,
    /// Scheduler-side diagnostics beyond [`SimReport::events`].
    pub sched: SchedStats,
}

/// Scheduler internals surfaced for observability. Unlike the
/// observable fields of [`SimReport`] these are *scheduler-dependent*:
/// the sequential and sharded paths legitimately report different
/// values (only `barrier_episodes` agrees across them).
#[derive(Debug, Default, Clone, Copy)]
pub struct SchedStats {
    /// Peak size of the lock-wake event heap (sequential scheduler
    /// only; the sharded path schedules whole windows and has no
    /// event heap, so it reports 0).
    pub heap_peak: u64,
    /// Completed barrier episodes (cohort releases on the sequential
    /// path, window closes on the sharded one).
    pub barrier_episodes: u64,
    /// Single-threaded merge windows the sharded scheduler settled
    /// between phases (0 on the sequential path).
    pub merge_windows: u64,
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "PE panicked with a non-string payload".to_string()
    }
}

/// Does the module contain lock opcodes? Lock grant order is defined
/// by the canonical *global* event order, which shard workers do not
/// observe inside a window, so lock-using programs always run on the
/// exact sequential scheduler regardless of `sim_jobs`.
pub fn module_uses_locks(module: &Module) -> bool {
    let chunk_has = |code: &[Op]| {
        code.iter().any(|op| {
            matches!(op, Op::LockAcquire { .. } | Op::LockTry { .. } | Op::LockRelease { .. })
        })
    };
    chunk_has(&module.main.code) || module.funcs.iter().any(|(_, c, _)| chunk_has(&c.code))
}

/// The shard-worker count [`run_module`] will actually use for `cfg`:
/// the `sim_jobs` request resolved against the PE count and the
/// host's parallelism (see `lol_shmem::shard::effective_jobs`).
/// Exported so the sweep scheduler can weigh sim configs by real
/// thread use instead of PE count.
pub fn planned_jobs(cfg: &ShmemConfig) -> usize {
    let available = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    lol_shmem::shard::effective_jobs(cfg.sim_jobs, cfg.n_pes, available)
}

/// Run `module` on `cfg.n_pes` simulated PEs with the canonical
/// tie-break order (PE id), sharding across `cfg.sim_jobs` workers
/// when the job is big enough and lock-free (`sim_jobs = 0` resolves
/// to the host's parallelism; `1` forces the sequential scheduler).
/// Outputs are byte-identical at every `sim_jobs` setting.
pub fn run_module(
    module: &Module,
    cfg: &ShmemConfig,
    input: &[String],
) -> Result<SimReport, SpmdError> {
    let jobs = planned_jobs(cfg);
    if jobs > 1 && !module_uses_locks(module) {
        par::run_sharded(module, cfg, input, &ShardPlan::contiguous(cfg.n_pes, jobs))
    } else {
        run_sequential(module, cfg, input, None)
    }
}

/// Like [`run_module`] with an explicit worker count (overrides
/// `cfg.sim_jobs`). Exists for the jobs=1-vs-jobs=N determinism
/// battery; production callers set `ShmemConfig::sim_jobs`.
pub fn run_module_jobs(
    module: &Module,
    cfg: &ShmemConfig,
    input: &[String],
    jobs: usize,
) -> Result<SimReport, SpmdError> {
    run_module(module, &cfg.clone().sim_jobs(jobs.max(1)), input)
}

/// Like [`run_module`], with an explicit PE→shard assignment.
/// Observables are invariant under the plan (the salted-plan property
/// test pins this); lock-using modules fall back to the sequential
/// scheduler, which trivially satisfies the same contract.
pub fn run_module_sharded(
    module: &Module,
    cfg: &ShmemConfig,
    input: &[String],
    plan: &ShardPlan,
) -> Result<SimReport, SpmdError> {
    if plan.jobs() > 1 && !module_uses_locks(module) {
        par::run_sharded(module, cfg, input, plan)
    } else {
        run_sequential(module, cfg, input, None)
    }
}

/// Like [`run_module`], with a custom tie-break key for events at
/// equal `t_ns`, always on the sequential scheduler. Exists for the
/// determinism property tests: on race-free programs every order
/// function yields identical outputs and virtual walls.
pub fn run_module_with_order(
    module: &Module,
    cfg: &ShmemConfig,
    input: &[String],
    order: &dyn Fn(usize) -> u64,
) -> Result<SimReport, SpmdError> {
    run_sequential(module, cfg, input, Some(order))
}

/// The sequential scheduler: a lock-wake event heap plus a cohort
/// release cursor for barrier episodes. Handles every program
/// (including locks) and any tie-break order; `order = None` is the
/// canonical ascending-PE order.
fn run_sequential(
    module: &Module,
    cfg: &ShmemConfig,
    input: &[String],
    order: Option<&dyn Fn(usize) -> u64>,
) -> Result<SimReport, SpmdError> {
    let world = SimWorld::new(cfg);
    let n = cfg.n_pes;
    let key = |pe: usize| order.map_or(pe as u64, |f| f(pe));
    let mut machines: Vec<Machine<'_>> = (0..n).map(|_| Machine::new(module, input)).collect();
    let mut outputs = vec![String::new(); n];
    let mut done = vec![false; n];
    let mut n_done = 0usize;
    let mut events = 0u64;
    // The cohort: PEs released together by a completed barrier
    // episode (program start is episode zero at t = 0). All of them
    // resume at the same synchronized time, so the canonical order is
    // just ascending PE — one cursor, no heap traffic. A custom
    // tie-break re-sorts once (test-only path).
    let mut cohort: Vec<usize> = (0..n).collect();
    if order.is_some() {
        cohort.sort_by_key(|&p| (key(p), p));
    }
    let mut cohort_time = 0u64;
    let mut cohort_next = 0usize;
    let mut sched = SchedStats::default();
    // Min-heap over (t_ns, tie, pe) — lock hand-offs only.
    let mut queue: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
    loop {
        // Next event: the smaller of the cohort cursor and the heap
        // head, compared on the same (t_ns, tie, pe) key.
        let cohort_key = (cohort_next < cohort.len()).then(|| {
            let p = cohort[cohort_next];
            (cohort_time, key(p), p)
        });
        let queue_key = queue.peek().map(|&Reverse(k)| k);
        let pe = match (cohort_key, queue_key) {
            (None, None) => break,
            (Some(ck), qk) if qk.is_none() || ck <= qk.unwrap() => {
                cohort_next += 1;
                // Lazy clock max-sync to the episode's release time.
                let mut st = world.state.borrow_mut();
                st.vclock[ck.2] = st.vclock[ck.2].max(cohort_time);
                ck.2
            }
            _ => queue.pop().expect("peeked").0 .2,
        };
        events += 1;
        let sub = SimPe { world: &world, id: pe };
        let machine = &mut machines[pe];
        let step = catch_unwind(AssertUnwindSafe(|| machine.resume(&sub)));
        match step {
            Err(payload) => {
                // Substrate diagnostics (heap bounds, allocation
                // mismatch, lock misuse) panic exactly like the
                // threaded world; the first one aborts the job.
                return Err(SpmdError { pe, message: panic_message(payload) });
            }
            Ok(Err(e)) => return Err(SpmdError { pe, message: e.to_string() }),
            Ok(Ok(Step::Done)) => {
                outputs[pe] = machines[pe].take_output();
                done[pe] = true;
                n_done += 1;
            }
            Ok(Ok(Step::Blocked)) => {
                debug_assert_ne!(
                    world.state.borrow().block[pe],
                    Block::Run,
                    "machine blocked but the substrate did not park PE {pe}"
                );
            }
        }
        let mut st = world.state.borrow_mut();
        for (t, p) in st.wakes.drain(..) {
            queue.push(Reverse((t, key(p), p)));
        }
        sched.heap_peak = sched.heap_peak.max(queue.len() as u64);
        if st.episode_done {
            // All n PEs arrived, which means every prior release was
            // consumed and no lock hand-off can be pending: release
            // the whole cohort with one cursor reset.
            st.episode_done = false;
            sched.barrier_episodes += 1;
            debug_assert!(queue.is_empty() && cohort_next == cohort.len());
            let sync = st.bar_max + if st.bar_explicit { VIRT_BARRIER_NS } else { 0 };
            st.bar_count = 0;
            st.bar_max = 0;
            for p in 0..n {
                st.block[p] = Block::BarrierDone;
            }
            cohort_time = sync;
            cohort_next = 0;
        }
    }
    if n_done < n {
        // The queue drained with parked PEs left: a deadlock, detected
        // *exactly* instead of by the threaded world's watchdog — one
        // of the perks of simulation.
        let st = world.state.borrow();
        let pe = (0..n).find(|&p| !done[p]).expect("some PE is unfinished");
        let what = match st.block[pe] {
            Block::LockWait | Block::LockDone => "IM SRSLY MESIN WIF (lock)",
            _ => "HUGZ (barrier)",
        };
        return Err(SpmdError {
            pe,
            message: format!(
                "O NOES! [RUN0191] PE {pe} WAITED 2 LONG AT {what} — SUM PE NEVER SHOWED UP \
                 (DEADLOCK?)"
            ),
        });
    }
    let mut st = world.state.borrow_mut();
    let stats = std::mem::take(&mut st.stats);
    let virtual_ns = std::mem::take(&mut st.vclock);
    let makespan_ns = virtual_ns.iter().copied().max().unwrap_or(0);
    let traces: Vec<Option<PeTrace>> = if st.tracers.is_empty() {
        (0..n).map(|_| None).collect()
    } else {
        std::mem::take(&mut st.tracers)
            .into_iter()
            .enumerate()
            .map(|(p, buf)| Some(buf.finish(virtual_ns[p])))
            .collect()
    };
    Ok(SimReport { outputs, stats, traces, virtual_ns, makespan_ns, events, sched })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lol_ast::{BinOp, LolType};
    use lol_interp::Value;
    use lol_shmem::{run_spmd, ClockMode, LatencyModel};
    use lol_vm::ops::{Chunk, Op};

    fn cfg(n: usize) -> ShmemConfig {
        ShmemConfig::new(n).clock(ClockMode::Virtual)
    }

    /// Hand-assembled ring exchange: every PE puts `me * 100` to its
    /// right neighbour, barriers, prints what landed.
    fn ring_module() -> Module {
        Module {
            consts: vec![Value::Numbr(1), Value::Numbr(100)],
            main: Chunk {
                code: vec![
                    Op::Me,
                    Op::Const(0),
                    Op::Bin(BinOp::Sum),
                    Op::MahFrenz,
                    Op::Bin(BinOp::Mod),
                    Op::PushBff,
                    Op::Me,
                    Op::Const(1),
                    Op::Bin(BinOp::Produkt),
                    Op::SharedStore { off: 0, ty: LolType::Numbr, remote: true },
                    Op::PopBff,
                    Op::Barrier,
                    Op::SharedLoad { off: 0, ty: LolType::Numbr, remote: false },
                    Op::Visible { argc: 1, newline: true },
                    Op::Halt,
                ],
                n_slots: 1,
                n_arrays: 0,
            },
            funcs: vec![],
            shared_words: 1,
        }
    }

    /// Hand-assembled lock counter: every PE locks PE 0's lock cell
    /// (words 0..3), bumps the counter at word 3, then prints it after
    /// a barrier.
    fn lock_module() -> Module {
        Module {
            consts: vec![Value::Numbr(0), Value::Numbr(1)],
            main: Chunk {
                code: vec![
                    Op::Const(0),
                    Op::PushBff,
                    Op::LockAcquire { off: 0, remote: true },
                    Op::SharedLoad { off: 3, ty: LolType::Numbr, remote: true },
                    Op::Const(1),
                    Op::Bin(BinOp::Sum),
                    Op::SharedStore { off: 3, ty: LolType::Numbr, remote: true },
                    Op::LockRelease { off: 0, remote: true },
                    Op::PopBff,
                    Op::Barrier,
                    Op::Const(0),
                    Op::PushBff,
                    Op::SharedLoad { off: 3, ty: LolType::Numbr, remote: true },
                    Op::PopBff,
                    Op::Visible { argc: 1, newline: true },
                    Op::Halt,
                ],
                n_slots: 1,
                n_arrays: 0,
            },
            funcs: vec![],
            shared_words: 4,
        }
    }

    /// Threaded reference run of the same module, collecting the same
    /// observables.
    fn threaded(module: &Module, cfg: ShmemConfig) -> (Vec<String>, Vec<CommStats>, Vec<u64>) {
        let r = run_spmd(cfg, |pe| {
            let out = lol_vm::run_on_pe(module, pe, &[]).unwrap();
            (out, pe.stats(), pe.virtual_ns())
        })
        .unwrap();
        let mut outs = Vec::new();
        let mut stats = Vec::new();
        let mut clocks = Vec::new();
        for (o, s, c) in r {
            outs.push(o);
            stats.push(s);
            clocks.push(c);
        }
        (outs, stats, clocks)
    }

    #[test]
    fn ring_matches_threaded_vm_exactly() {
        let m = ring_module();
        let c = cfg(8).latency(LatencyModel::Uniform { remote_ns: 1000 });
        let sim = run_module(&m, &c, &[]).unwrap();
        let (outs, stats, clocks) = threaded(&m, c);
        assert_eq!(sim.outputs, outs);
        assert_eq!(sim.stats, stats);
        assert_eq!(sim.virtual_ns, clocks);
        assert_eq!(sim.outputs[0], "700\n");
        assert_eq!(sim.makespan_ns, 1000 + VIRT_OP_NS + VIRT_BARRIER_NS);
    }

    #[test]
    fn lock_counter_matches_threaded_vm_for_both_kinds() {
        for kind in LockKind::ALL {
            let m = lock_module();
            let c = cfg(4).lock(kind).latency(LatencyModel::epiphany16());
            let sim = run_module(&m, &c, &[]).unwrap();
            let (outs, stats, clocks) = threaded(&m, c);
            assert_eq!(sim.outputs, outs, "{kind:?}");
            assert_eq!(sim.stats, stats, "{kind:?}");
            assert_eq!(sim.virtual_ns, clocks, "{kind:?}");
            assert_eq!(sim.outputs[3], "4\n");
        }
    }

    #[test]
    fn traces_match_threaded_signatures() {
        let m = ring_module();
        let c = cfg(4).trace(true);
        let sim = run_module(&m, &c, &[]).unwrap();
        let threaded_traces = run_spmd(c, |pe| {
            lol_vm::run_on_pe(&m, pe, &[]).unwrap();
            pe.take_trace().unwrap()
        })
        .unwrap();
        for (s, t) in sim.traces.iter().zip(&threaded_traces) {
            assert_eq!(s.as_ref().unwrap().signature(), t.signature());
        }
    }

    #[test]
    fn any_tie_break_order_is_equivalent() {
        let m = lock_module();
        let c = cfg(6).latency(LatencyModel::Uniform { remote_ns: 700 });
        let canonical = run_module(&m, &c, &[]).unwrap();
        let orders: [&dyn Fn(usize) -> u64; 3] =
            [&|pe| 1000 - pe as u64, &|pe| (pe as u64).wrapping_mul(0x9E37_79B9) & 0xFFFF, &|_| 0];
        for (i, order) in orders.iter().enumerate() {
            let r = run_module_with_order(&m, &c, &[], order).unwrap();
            assert_eq!(r.outputs, canonical.outputs, "order {i}");
            assert_eq!(r.virtual_ns, canonical.virtual_ns, "order {i}");
            assert_eq!(r.makespan_ns, canonical.makespan_ns, "order {i}");
        }
    }

    /// The sharded scheduler is byte-identical to the sequential one
    /// on a real multi-shard job, including episode/event accounting.
    #[test]
    fn sharded_matches_sequential_on_the_ring() {
        let m = ring_module();
        let c = cfg(64).latency(LatencyModel::epiphany16()).trace(true);
        let seq = run_module_jobs(&m, &c, &[], 1).unwrap();
        for jobs in [2usize, 3, 4, 7] {
            let par = run_module_jobs(&m, &c, &[], jobs).unwrap();
            assert_eq!(par.outputs, seq.outputs, "jobs {jobs}");
            assert_eq!(par.stats, seq.stats, "jobs {jobs}");
            assert_eq!(par.virtual_ns, seq.virtual_ns, "jobs {jobs}");
            assert_eq!(par.makespan_ns, seq.makespan_ns, "jobs {jobs}");
            assert_eq!(par.events, seq.events, "jobs {jobs}");
            let sigs = |r: &SimReport| {
                r.traces.iter().map(|t| t.as_ref().unwrap().signature()).collect::<Vec<_>>()
            };
            assert_eq!(sigs(&par), sigs(&seq), "jobs {jobs}");
        }
    }

    /// Lock-using modules never shard (grant order is global), so a
    /// forced jobs=4 run still matches — via the sequential fallback.
    #[test]
    fn lock_modules_fall_back_to_sequential() {
        assert!(module_uses_locks(&lock_module()));
        assert!(!module_uses_locks(&ring_module()));
        let m = lock_module();
        let c = cfg(8).lock(LockKind::Ticket);
        let seq = run_module_jobs(&m, &c, &[], 1).unwrap();
        let par = run_module_jobs(&m, &c, &[], 4).unwrap();
        assert_eq!(par.outputs, seq.outputs);
        assert_eq!(par.virtual_ns, seq.virtual_ns);
        assert_eq!(par.events, seq.events);
    }

    /// Deadlocks are detected identically on the sharded scheduler.
    #[test]
    fn deadlock_is_detected_exactly() {
        // PE 0 skips the barrier (its falsy id jumps over it).
        let m = Module {
            consts: vec![],
            main: Chunk {
                code: vec![Op::Me, Op::JumpIfFalse(3), Op::Barrier, Op::Halt],
                n_slots: 1,
                n_arrays: 0,
            },
            funcs: vec![],
            shared_words: 0,
        };
        for jobs in [1usize, 3] {
            let err = run_module_jobs(&m, &cfg(3), &[], jobs).unwrap_err();
            assert!(err.message.contains("RUN0191"), "jobs {jobs}: {}", err.message);
            assert!(err.message.contains("HUGZ"), "jobs {jobs}: {}", err.message);
            assert_eq!(err.pe, 1, "jobs {jobs}: first unfinished PE");
        }
    }

    #[test]
    fn lock_misuse_is_diagnosed_like_the_threaded_world() {
        let m = Module {
            consts: vec![],
            main: Chunk {
                code: vec![Op::LockRelease { off: 0, remote: false }, Op::Halt],
                n_slots: 1,
                n_arrays: 0,
            },
            funcs: vec![],
            shared_words: 3,
        };
        let err = run_module(&m, &cfg(2), &[]).unwrap_err();
        assert!(err.message.contains("RUN0180"), "{}", err.message);
    }

    #[test]
    fn mega_scale_65536_pes() {
        let n = 65_536;
        let m = ring_module();
        let sim = run_module(&m, &cfg(n), &[]).unwrap();
        assert_eq!(sim.outputs.len(), n);
        assert_eq!(sim.outputs[0], format!("{}\n", (n - 1) * 100));
        assert_eq!(sim.outputs[n - 1], format!("{}\n", (n - 2) * 100));
        // Off-latency: one remote put (1ns) then the explicit barrier.
        assert_eq!(sim.makespan_ns, VIRT_OP_NS + VIRT_BARRIER_NS);
        // Episode-based accounting, identical on every scheduler: the
        // ring has two barrier episodes (the startup allocation fence
        // and the explicit HUGZ), and every PE runs one segment per
        // episode plus the final segment to completion — segments =
        // n × (episodes + 1) = 3n.
        assert_eq!(sim.events, 3 * n as u64);
    }

    /// The headline scale: 2^20 > 1,000,000 PEs. Run with
    /// `cargo test --release -p lol-sim -- --ignored --nocapture`;
    /// prints its host wall for the CI mega-scale timing artifact.
    #[test]
    #[ignore = "release-mode mega-scale run (~1M PEs)"]
    fn mega_scale_one_million_pes() {
        let n = 1 << 20;
        let m = ring_module();
        let t0 = std::time::Instant::now();
        let sim = run_module(&m, &cfg(n), &[]).unwrap();
        eprintln!(
            "mega-scale wall: {} PEs in {} ms ({} shard workers)",
            n,
            t0.elapsed().as_millis(),
            planned_jobs(&cfg(n))
        );
        assert_eq!(sim.outputs.len(), n);
        for pe in [0usize, 1, n / 2, n - 1] {
            let left = (pe + n - 1) % n;
            assert_eq!(sim.outputs[pe], format!("{}\n", left * 100), "PE {pe}");
        }
        assert_eq!(sim.makespan_ns, VIRT_OP_NS + VIRT_BARRIER_NS);
        // Same episode-based formula as the 65,536-PE pin: two barrier
        // episodes → n × (2 + 1) segments on every scheduler.
        assert_eq!(sim.events, 3 * n as u64);
    }
}
