//! The sharded scheduler: barrier-to-barrier windows in parallel.
//!
//! ## Why whole windows are safe to parallelize
//!
//! Corpus programs are compute → remote-ops → barrier structured, and
//! the simulator's virtual clocks never gate heap visibility (a put
//! lands when the event executes, not when its latency elapses — the
//! same contract as the threaded world). So the conservative
//! time-window of classic parallel discrete-event simulation
//! degenerates here to the *barrier episode*: between two episode
//! boundaries no PE can be woken by another (locks are excluded, see
//! below), which makes every PE's segment independent of the others'
//! scheduling inside the window.
//!
//! Each phase runs one segment per live PE, sharded across workers by
//! a [`ShardPlan`]; a single-threaded merge then settles the window
//! boundary: it validates collective allocations in canonical PE
//! order, advances the release clock, and re-opens every shard. The
//! merge sees per-shard "inboxes" — arrival records, allocation
//! requests, and errors — and processes them in canonical
//! `(t_ns, tie, pe)` order, which within a window (all arrivals share
//! the window's release time, and the tie-break is the PE id) is just
//! ascending PE. That makes every merge decision — error attribution,
//! allocation offsets, the episode's synchronized clock — identical
//! to the sequential scheduler's, which is how `jobs = N` stays
//! byte-identical to `jobs = 1`.
//!
//! ## Determinism argument
//!
//! On a data-race-free program no PE reads a word written by another
//! PE in the same episode, so each segment's observables (output,
//! stats, trace events, clock advance) are a pure function of the
//! heap state at the window boundary plus the PE's own state — both
//! independent of worker interleaving. Racy programs get the threaded
//! world's contract instead: unspecified *values*, never tearing,
//! never undefined behaviour (the heap is `AtomicU64`, this crate
//! stays `forbid(unsafe_code)`).
//!
//! ## Locks
//!
//! Lock hand-off order is defined by the *global* event order, which
//! workers cannot observe mid-window, so modules containing lock
//! opcodes never take this path — [`crate::run_module`] detects them
//! statically and uses the sequential scheduler, whatever `sim_jobs`
//! says.

use crate::{make_rng, panic_message, Block, SchedStats, SimReport};
use lol_shmem::shard::ShardPlan;
use lol_shmem::substrate::{Progress, Substrate};
use lol_shmem::{CommStats, PeTrace, ShmemConfig, SpmdError, SymAddr, TraceBuffer};
use lol_trace::{EventKind, VIRT_BARRIER_NS, VIRT_OP_NS};
use lol_vm::machine::{Machine, Step};
use lol_vm::Module;
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Heap state shared by every worker during a phase; mutated only by
/// the single-threaded merge between phases.
struct ParWorld {
    heap_words: usize,
    /// Per-PE symmetric heaps, sized to the allocation cursor at the
    /// last merge. Word-granular `Relaxed` atomics — the exact memory
    /// model of the threaded world's heap.
    heaps: Vec<Box<[AtomicU64]>>,
    /// Sidecar for addresses beyond the cursor (legal, like the
    /// sequential heap's lazy growth); entries migrate into `heaps`
    /// when a merge advances the cursor past them.
    overflow: Mutex<HashMap<(u32, u32), u64>>,
    /// Collective-allocation log (words per call) and resolved
    /// offsets — read-only during phases, appended at merges.
    alloc_log: Vec<u32>,
    alloc_offsets: Vec<u32>,
    cursor: usize,
    /// The synchronized clock of the last completed episode; every PE
    /// lazily max-syncs to it at its next segment.
    release_time: u64,
}

impl ParWorld {
    fn check(&self, addr: SymAddr) -> usize {
        let idx = addr.index();
        if idx >= self.heap_words {
            panic!(
                "O NOES! [RUN0100] SYMMETRIC ADDRESS {} IZ OUTSIDE DA HEAP ({} WORDS)",
                addr.0, self.heap_words
            );
        }
        idx
    }

    fn load(&self, pe: usize, addr: SymAddr) -> u64 {
        let idx = self.check(addr);
        if let Some(w) = self.heaps[pe].get(idx) {
            w.load(Ordering::Relaxed)
        } else {
            *self.overflow.lock().unwrap().get(&(pe as u32, idx as u32)).unwrap_or(&0)
        }
    }

    fn store(&self, pe: usize, addr: SymAddr, value: u64) {
        let idx = self.check(addr);
        if let Some(w) = self.heaps[pe].get(idx) {
            w.store(value, Ordering::Relaxed);
        } else {
            self.overflow.lock().unwrap().insert((pe as u32, idx as u32), value);
        }
    }

    /// Resize every heap to the (grown) cursor and migrate overflow
    /// words the cursor has caught up with. Merge-only.
    fn grow_heaps(&mut self) {
        let cur = self.cursor;
        for h in &mut self.heaps {
            if h.len() < cur {
                let mut grown: Vec<AtomicU64> = Vec::with_capacity(cur);
                for w in h.iter() {
                    grown.push(AtomicU64::new(w.load(Ordering::Relaxed)));
                }
                grown.resize_with(cur, || AtomicU64::new(0));
                *h = grown.into_boxed_slice();
            }
        }
        let mut ov = self.overflow.lock().unwrap();
        let caught: Vec<(u32, u32)> =
            ov.keys().copied().filter(|&(_, idx)| (idx as usize) < cur).collect();
        for key in caught {
            let v = ov.remove(&key).expect("key was just listed");
            self.heaps[key.0 as usize][key.1 as usize].store(v, Ordering::Relaxed);
        }
    }
}

/// One PE's first arrival record for a phase: `(pe, explicit)`.
type Arrival = (usize, bool);

/// Per-shard mutable state: SoA vectors indexed by *local* member
/// position, plus the phase "inbox" the merge consumes.
struct ShardLocal {
    vclock: Vec<u64>,
    stats: Vec<CommStats>,
    rng: Vec<crate::PeRng>,
    tracers: Vec<TraceBuffer>,
    block: Vec<Block>,
    alloc_seq: Vec<u32>,
    outputs: Vec<String>,
    done: Vec<bool>,
    done_count: usize,
    // ---- phase inbox, reset by `begin_phase` ----
    segments: u64,
    arrivals: usize,
    arrive_max: u64,
    first_arrival: Option<Arrival>,
    /// At most one per member per phase (`shmalloc` parks): `(seq,
    /// pe, words)`, pe-ascending because members run in order.
    alloc_reqs: Vec<(u32, usize, usize)>,
    error: Option<(usize, String)>,
}

impl ShardLocal {
    fn new(members: &[usize], cfg: &ShmemConfig) -> Self {
        let k = members.len();
        let tracers = if cfg.trace {
            members
                .iter()
                .map(|&pe| {
                    let cap = if cfg.traces_pe(pe) { cfg.trace_capacity } else { 0 };
                    TraceBuffer::new(pe, cap)
                })
                .collect()
        } else {
            Vec::new()
        };
        ShardLocal {
            vclock: vec![0; k],
            stats: vec![CommStats::default(); k],
            rng: members.iter().map(|&pe| make_rng(cfg, pe)).collect(),
            tracers,
            block: vec![Block::Run; k],
            alloc_seq: vec![0; k],
            outputs: vec![String::new(); k],
            done: vec![false; k],
            done_count: 0,
            segments: 0,
            arrivals: 0,
            arrive_max: 0,
            first_arrival: None,
            alloc_reqs: Vec::new(),
            error: None,
        }
    }

    fn begin_phase(&mut self) {
        self.segments = 0;
        self.arrivals = 0;
        self.arrive_max = 0;
        self.first_arrival = None;
        self.alloc_reqs.clear();
        self.error = None;
    }
}

/// One shard: its member PEs (ascending), their machines, and their
/// SoA state. Owned by the orchestrator, lent to one worker per
/// phase.
struct Shard<'m> {
    members: &'m [usize],
    /// Created inside the shard's first phase so mega-scale machine
    /// construction parallelizes too.
    machines: Vec<Machine<'m>>,
    local: RefCell<ShardLocal>,
}

/// One PE's substrate handle during a sharded phase.
struct ParPe<'a> {
    world: &'a ParWorld,
    cfg: &'a ShmemConfig,
    plan: &'a ShardPlan,
    local: &'a RefCell<ShardLocal>,
    /// Local member index within the shard.
    li: usize,
    pe: usize,
}

impl ParPe<'_> {
    fn charge(&self, l: &mut ShardLocal, target: usize) {
        if target != self.pe {
            let delay = self.cfg.latency.delay_ns(self.pe, target);
            l.vclock[self.li] += delay + VIRT_OP_NS;
        }
    }

    fn trace(&self, l: &mut ShardLocal, kind: EventKind, peer: usize, addr: SymAddr, bytes: u32) {
        if l.tracers.is_empty() {
            return;
        }
        let now = l.vclock[self.li];
        l.tracers[self.li].record(kind, peer, addr.0, bytes, now);
    }

    /// Record this PE's arrival at the window boundary; the merge
    /// counts arrivals across shards and completes the episode.
    fn enter_barrier(&self, l: &mut ShardLocal, explicit: bool) {
        l.stats[self.li].barriers += 1;
        l.arrivals += 1;
        l.arrive_max = l.arrive_max.max(l.vclock[self.li]);
        if l.first_arrival.is_none() {
            l.first_arrival = Some((self.pe, explicit));
        }
        l.block[self.li] = Block::BarrierWait;
    }
}

impl Substrate for ParPe<'_> {
    fn id(&self) -> usize {
        self.pe
    }

    fn n_pes(&self) -> usize {
        self.cfg.n_pes
    }

    fn shmalloc(&self, words: usize) -> Progress<SymAddr> {
        let mut l = self.local.borrow_mut();
        if l.block[self.li] == Block::BarrierDone {
            l.block[self.li] = Block::Run;
            let seq = l.alloc_seq[self.li] as usize - 1;
            return Progress::Ready(SymAddr(self.world.alloc_offsets[seq]));
        }
        // First attempt: park at the allocation fence and hand the
        // request to the merge, which validates all of them in
        // canonical PE order (so RUN0110/RUN0111 attribution matches
        // the sequential scheduler exactly).
        let seq = l.alloc_seq[self.li];
        l.alloc_seq[self.li] = seq + 1;
        l.alloc_reqs.push((seq, self.pe, words));
        self.enter_barrier(&mut l, false);
        Progress::Pending
    }

    fn put_u64(&self, addr: SymAddr, target: usize, value: u64) {
        let mut l = self.local.borrow_mut();
        if target == self.pe {
            l.stats[self.li].local_puts += 1;
        } else {
            l.stats[self.li].remote_puts += 1;
        }
        self.charge(&mut l, target);
        self.world.store(target, addr, value);
        if target != self.pe {
            self.trace(&mut l, EventKind::Put, target, addr, 8);
        }
    }

    fn get_u64(&self, addr: SymAddr, target: usize) -> u64 {
        let mut l = self.local.borrow_mut();
        if target == self.pe {
            l.stats[self.li].local_gets += 1;
        } else {
            l.stats[self.li].remote_gets += 1;
        }
        self.charge(&mut l, target);
        let v = self.world.load(target, addr);
        if target != self.pe {
            self.trace(&mut l, EventKind::Get, target, addr, 8);
        }
        v
    }

    fn barrier(&self) -> Progress<()> {
        let mut l = self.local.borrow_mut();
        if l.block[self.li] == Block::BarrierDone {
            l.block[self.li] = Block::Run;
            self.trace(&mut l, EventKind::BarrierExit, self.pe, SymAddr(0), 0);
            return Progress::Ready(());
        }
        self.trace(&mut l, EventKind::BarrierEnter, self.pe, SymAddr(0), 0);
        self.enter_barrier(&mut l, true);
        Progress::Pending
    }

    fn lock(&self, _addr: SymAddr, _target: usize) -> Progress<()> {
        unreachable!("lock-using modules are routed to the sequential scheduler")
    }

    fn try_lock(&self, _addr: SymAddr, _target: usize) -> bool {
        unreachable!("lock-using modules are routed to the sequential scheduler")
    }

    fn unlock(&self, _addr: SymAddr, _target: usize) {
        unreachable!("lock-using modules are routed to the sequential scheduler")
    }

    fn rand_i64(&self) -> i64 {
        let mut l = self.local.borrow_mut();
        l.rng[self.li].gen_i64_below(1i64 << 31)
    }

    fn rand_f64(&self) -> f64 {
        let mut l = self.local.borrow_mut();
        l.rng[self.li].gen_unit_f64()
    }

    fn shard_of(&self, pe: usize) -> usize {
        self.plan.shard_of(pe)
    }
}

/// One shard's phase: run one segment per live member, in ascending
/// member order, stopping at the first error.
fn run_phase<'m>(
    shard: &mut Shard<'m>,
    world: &ParWorld,
    cfg: &ShmemConfig,
    plan: &ShardPlan,
    module: &'m Module,
    input: &'m [String],
) {
    if shard.machines.is_empty() && !shard.members.is_empty() {
        shard.machines = shard.members.iter().map(|_| Machine::new(module, input)).collect();
    }
    shard.local.get_mut().begin_phase();
    for li in 0..shard.members.len() {
        let pe = shard.members[li];
        {
            let mut l = shard.local.borrow_mut();
            if l.done[li] {
                continue;
            }
            debug_assert!(
                matches!(l.block[li], Block::Run | Block::BarrierDone),
                "PE {pe} entered a phase still parked"
            );
            // Lazy clock max-sync to the last episode's release time
            // (same rule as the sequential cohort pop).
            l.vclock[li] = l.vclock[li].max(world.release_time);
            l.segments += 1;
        }
        let sub = ParPe { world, cfg, plan, local: &shard.local, li, pe };
        let machine = &mut shard.machines[li];
        let step = catch_unwind(AssertUnwindSafe(|| machine.resume(&sub)));
        let mut l = shard.local.borrow_mut();
        match step {
            Err(payload) => {
                l.error = Some((pe, panic_message(payload)));
                break;
            }
            Ok(Err(e)) => {
                l.error = Some((pe, e.to_string()));
                break;
            }
            Ok(Ok(Step::Done)) => {
                drop(l);
                let out = shard.machines[li].take_output();
                let mut l = shard.local.borrow_mut();
                l.outputs[li] = out;
                l.done[li] = true;
                l.done_count += 1;
            }
            Ok(Ok(Step::Blocked)) => {
                debug_assert_eq!(
                    l.block[li],
                    Block::BarrierWait,
                    "machine blocked but the substrate did not park PE {pe}"
                );
            }
        }
    }
}

/// Run `module` under `plan`, one worker thread per shard per phase.
/// Callers guarantee `plan.jobs() > 1` and a lock-free module.
pub(crate) fn run_sharded(
    module: &Module,
    cfg: &ShmemConfig,
    input: &[String],
    plan: &ShardPlan,
) -> Result<SimReport, SpmdError> {
    if let Err(e) = cfg.validate() {
        panic!("{e}");
    }
    let n = cfg.n_pes;
    debug_assert_eq!(plan.n_pes(), n);
    debug_assert!(plan.jobs() > 1);
    let mut world = ParWorld {
        heap_words: cfg.heap_words,
        heaps: (0..n).map(|_| Vec::new().into_boxed_slice()).collect(),
        overflow: Mutex::new(HashMap::new()),
        alloc_log: Vec::new(),
        alloc_offsets: Vec::new(),
        cursor: 0,
        release_time: 0,
    };
    let mut shards: Vec<Shard<'_>> = (0..plan.jobs())
        .map(|s| Shard {
            members: plan.members(s),
            machines: Vec::new(),
            local: RefCell::new(ShardLocal::new(plan.members(s), cfg)),
        })
        .collect();
    let mut events = 0u64;
    let mut sched = SchedStats::default();
    loop {
        // ---- phase: one segment per live PE, sharded ----
        std::thread::scope(|scope| {
            let world = &world;
            for shard in shards.iter_mut().filter(|s| !s.members.is_empty()) {
                scope.spawn(move || run_phase(shard, world, cfg, plan, module, input));
            }
        });
        // ---- merge: settle the window boundary, single-threaded ----
        sched.merge_windows += 1;
        let mut arrivals = 0usize;
        let mut arrive_max = 0u64;
        let mut first_arrival: Option<Arrival> = None;
        let mut done_total = 0usize;
        let mut run_err: Option<(usize, String)> = None;
        let mut reqs: Vec<(u32, usize, usize)> = Vec::new();
        for shard in &mut shards {
            let l = shard.local.get_mut();
            events += l.segments;
            arrivals += l.arrivals;
            arrive_max = arrive_max.max(l.arrive_max);
            done_total += l.done_count;
            if let Some(a) = l.first_arrival {
                if first_arrival.is_none_or(|b| a.0 < b.0) {
                    first_arrival = Some(a);
                }
            }
            if let Some(e) = l.error.take() {
                if run_err.as_ref().is_none_or(|r| e.0 < r.0) {
                    run_err = Some(e);
                }
            }
            reqs.append(&mut l.alloc_reqs);
        }
        // Allocation requests validated in canonical PE order — the
        // exact call order the sequential scheduler would have seen,
        // so mismatch/exhaustion diagnostics attribute identically.
        reqs.sort_unstable_by_key(|&(_, pe, _)| pe);
        let mut alloc_err: Option<(usize, String)> = None;
        for &(seq, pe, words) in &reqs {
            let seq = seq as usize;
            if let Some(&prev) = world.alloc_log.get(seq) {
                if prev as usize != words {
                    alloc_err = Some((
                        pe,
                        format!(
                            "O NOES! [RUN0110] COLLECTIVE ALLOCASHUN MISMATCH AT CALL \
                             #{seq}: PE {pe} WANTS {words} WORDS BUT DA JOB ALREADY \
                             AGREED ON {prev}"
                        ),
                    ));
                    break;
                }
            } else {
                world.alloc_log.push(words as u32);
            }
            if world.alloc_offsets.get(seq).is_none() {
                let off = world.cursor;
                let end = off + words;
                if end > cfg.heap_words {
                    alloc_err = Some((
                        pe,
                        format!(
                            "O NOES! [RUN0111] NOT ENUF SYMMETRIC HEAP: PE {pe} NEEDS \
                             {end} WORDS BUT ONLY HAS {} (GROW heap_words)",
                            cfg.heap_words
                        ),
                    ));
                    break;
                }
                world.cursor = end;
                world.alloc_offsets.push(off as u32);
            }
        }
        // A phase error surfaces at its PE's segment, an allocation
        // error at the requesting PE's — canonical order picks the
        // smaller PE, like the sequential scheduler aborting at the
        // first erroring segment.
        if let Some((pe, message)) =
            [run_err, alloc_err].into_iter().flatten().min_by_key(|&(pe, _)| pe)
        {
            return Err(SpmdError { pe, message });
        }
        if done_total == n {
            break;
        }
        if arrivals == n {
            // Episode complete: grow the shared heaps to the new
            // cursor, then release every PE through the window clock.
            debug_assert_eq!(done_total, 0, "a done PE cannot also arrive");
            sched.barrier_episodes += 1;
            world.grow_heaps();
            let explicit = first_arrival.map(|(_, e)| e).unwrap_or(false);
            world.release_time = arrive_max + if explicit { VIRT_BARRIER_NS } else { 0 };
            for shard in &mut shards {
                for b in shard.local.get_mut().block.iter_mut() {
                    *b = Block::BarrierDone;
                }
            }
            continue;
        }
        // Partial arrival with unfinished PEs: the job can never make
        // progress again — the sequential scheduler's drained-queue
        // deadlock, detected at the same first unfinished PE.
        let (pe, what) = shards
            .iter_mut()
            .flat_map(|s| {
                let l = s.local.get_mut();
                s.members
                    .iter()
                    .zip(l.done.iter().zip(l.block.iter()))
                    .filter(|(_, (&d, _))| !d)
                    .map(|(&pe, (_, &b))| (pe, b))
                    .collect::<Vec<_>>()
            })
            .min_by_key(|&(pe, _)| pe)
            .expect("done_total < n leaves an unfinished PE");
        let what = match what {
            Block::LockWait | Block::LockDone => "IM SRSLY MESIN WIF (lock)",
            _ => "HUGZ (barrier)",
        };
        return Err(SpmdError {
            pe,
            message: format!(
                "O NOES! [RUN0191] PE {pe} WAITED 2 LONG AT {what} — SUM PE NEVER SHOWED UP \
                 (DEADLOCK?)"
            ),
        });
    }
    // ---- assemble, scattering shard-local state back to PE order ----
    let mut outputs = vec![String::new(); n];
    let mut stats = vec![CommStats::default(); n];
    let mut virtual_ns = vec![0u64; n];
    let mut traces: Vec<Option<PeTrace>> = (0..n).map(|_| None).collect();
    for shard in &mut shards {
        let l = shard.local.get_mut();
        let tracers = std::mem::take(&mut l.tracers);
        for (li, &pe) in shard.members.iter().enumerate() {
            outputs[pe] = std::mem::take(&mut l.outputs[li]);
            stats[pe] = l.stats[li];
            virtual_ns[pe] = l.vclock[li];
        }
        for (li, buf) in tracers.into_iter().enumerate() {
            let pe = shard.members[li];
            traces[pe] = Some(buf.finish(virtual_ns[pe]));
        }
    }
    let makespan_ns = virtual_ns.iter().copied().max().unwrap_or(0);
    Ok(SimReport { outputs, stats, traces, virtual_ns, makespan_ns, events, sched })
}
