//! Temporary review repro: ticket lock held across a barrier.

use lol_ast::BinOp;
use lol_interp::Value;
use lol_shmem::{run_spmd, ClockMode, LockKind, ShmemConfig};
use lol_sim::run_module;
use lol_vm::ops::{Chunk, Op};
use lol_vm::Module;

/// PE0: lock L@0, HUGZ, unlock. PE1: HUGZ, lock L@0, unlock.
/// Valid program (threaded world completes); contends on the lock.
fn module() -> Module {
    Module {
        consts: vec![Value::Numbr(0)],
        main: Chunk {
            code: vec![
                Op::Me,
                Op::JumpIfFalse(9),
                // PE1 (truthy id) path:
                Op::Barrier,
                Op::Const(0),
                Op::PushBff,
                Op::LockAcquire { off: 0, remote: true },
                Op::LockRelease { off: 0, remote: true },
                Op::PopBff,
                Op::Halt,
                // PE0 path: lock held across the barrier.
                Op::Const(0),
                Op::PushBff,
                Op::LockAcquire { off: 0, remote: true },
                Op::Barrier,
                Op::LockRelease { off: 0, remote: true },
                Op::PopBff,
                Op::Halt,
            ],
            n_slots: 1,
            n_arrays: 0,
        },
        funcs: vec![],
        shared_words: 3,
    }
}

// silence unused import if BinOp unused
#[allow(dead_code)]
fn _unused(_: BinOp) {}

#[test]
fn lock_across_barrier_matches_threaded_for_both_kinds() {
    for kind in LockKind::ALL {
        let m = module();
        let c = ShmemConfig::new(2).clock(ClockMode::Virtual).lock(kind);
        // Threaded reference: must complete.
        let threaded = run_spmd(c.clone(), |pe| {
            lol_vm::run_on_pe(&m, pe, &[]).unwrap();
            pe.virtual_ns()
        });
        assert!(threaded.is_ok(), "{kind:?}: threaded deadlocked?");
        let sim = run_module(&m, &c, &[]);
        assert!(sim.is_ok(), "{kind:?}: sim failed: {:?}", sim.err());
    }
}
