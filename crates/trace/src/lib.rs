//! # lol-trace — communication tracing and the virtual-time clock
//!
//! Aggregate `CommStats` tell students *how much* communication their
//! program did; this crate records *when*, *where* and *who waited on
//! whom*. Every backend (interpreter, VM, and the C stub via its trace
//! files) emits the same stream of [`TraceEvent`]s — one per remote
//! put/get/atomic, lock operation and explicit barrier — into a bounded
//! per-PE [`TraceBuffer`]. A finished job's buffers assemble into a
//! [`Trace`], which renders per-PE timelines ([`Trace::gantt`],
//! [`Trace::to_svg`]), Chrome `trace_event` JSON for Perfetto
//! ([`Trace::to_perfetto`]), a PE×PE communication matrix
//! ([`Trace::comm_matrix`]) and a critical-path estimate under any
//! interconnect cost function ([`Trace::critical_path`]).
//!
//! ## Virtual time
//!
//! [`ClockMode::Virtual`] replaces the substrate's busy-waited latency
//! injection with *accounting*: each remote access advances a per-PE
//! logical clock by the latency model's delay (plus [`VIRT_OP_NS`]),
//! and every barrier synchronizes the clocks to their maximum (explicit
//! barriers add [`VIRT_BARRIER_NS`]). The resulting "virtual wall" is a
//! deterministic function of the event sequence and the model — the
//! same program yields byte-identical virtual walls on any machine, at
//! any host load, under any worker count — so mesh-vs-torus-vs-flat
//! comparisons become machine-independent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod perfetto;
mod render;

/// Virtual cost of one remote operation on top of the latency model's
/// delay, in nanoseconds. Keeps virtual time moving even under
/// `LatencyModel::Off` so event ordering stays visible on timelines.
pub const VIRT_OP_NS: u64 = 1;

/// Virtual cost of one explicit barrier episode (`HUGZ`), charged after
/// the max-synchronization, in nanoseconds. Internal barriers (the
/// collective allocation fence) synchronize clocks but cost nothing, so
/// a replayed trace reproduces the virtual wall exactly.
pub const VIRT_BARRIER_NS: u64 = 10;

/// Which clock a run charges latency against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ClockMode {
    /// Real time: latency models busy-wait their delays on the
    /// monotonic clock (machine-dependent, but the run *feels* the
    /// interconnect). Default.
    #[default]
    Wall,
    /// Virtual time: latency models *account* their delays on a per-PE
    /// logical clock instead of spinning. Deterministic and
    /// machine-independent; the job's virtual wall is the maximum
    /// final clock across PEs.
    Virtual,
}

impl ClockMode {
    /// Both modes, in display order (the `clock=` sweep axis).
    pub const ALL: [ClockMode; 2] = [ClockMode::Wall, ClockMode::Virtual];
}

impl std::fmt::Display for ClockMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ClockMode::Wall => "wall",
            ClockMode::Virtual => "virtual",
        })
    }
}

impl std::str::FromStr for ClockMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "wall" | "real" => Ok(ClockMode::Wall),
            "virtual" | "virt" => Ok(ClockMode::Virtual),
            other => Err(format!("O NOES! clock IZ wall OR virtual, NOT {other}")),
        }
    }
}

/// What kind of communication event happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Remote scalar put (`UR x R ...` targeting another PE).
    Put,
    /// Remote scalar get (`... R UR x` from another PE).
    Get,
    /// Remote atomic memory operation (fetch-add / cswap / swap).
    Amo,
    /// Remote block put (`bytes` = words × 8).
    BlockPut,
    /// Remote block get (`bytes` = words × 8).
    BlockGet,
    /// Explicit barrier entered (`HUGZ`); the matching
    /// [`EventKind::BarrierExit`] timestamp shows how long this PE
    /// waited for the others.
    BarrierEnter,
    /// Explicit barrier released.
    BarrierExit,
    /// Blocking lock acquisition completed (`IM SRSLY MESIN WIF`).
    LockAcquire,
    /// Trylock attempt (`IM MESIN WIF`), successful or not.
    LockTry,
    /// Lock released (`DUN MESIN WIF`).
    LockRelease,
    /// Point-to-point wait satisfied (`shmem_wait_until` analog).
    Wait,
}

impl EventKind {
    /// One-byte code used by the C stub's trace files and compact
    /// renderings; [`EventKind::from_code`] inverts it.
    pub fn code(self) -> char {
        match self {
            EventKind::Put => 'P',
            EventKind::Get => 'G',
            EventKind::Amo => 'A',
            EventKind::BlockPut => 'p',
            EventKind::BlockGet => 'g',
            EventKind::BarrierEnter => 'B',
            EventKind::BarrierExit => 'b',
            EventKind::LockAcquire => 'L',
            EventKind::LockTry => 'T',
            EventKind::LockRelease => 'U',
            EventKind::Wait => 'W',
        }
    }

    /// Parse a [`EventKind::code`] byte back.
    pub fn from_code(c: char) -> Option<EventKind> {
        Some(match c {
            'P' => EventKind::Put,
            'G' => EventKind::Get,
            'A' => EventKind::Amo,
            'p' => EventKind::BlockPut,
            'g' => EventKind::BlockGet,
            'B' => EventKind::BarrierEnter,
            'b' => EventKind::BarrierExit,
            'L' => EventKind::LockAcquire,
            'T' => EventKind::LockTry,
            'U' => EventKind::LockRelease,
            'W' => EventKind::Wait,
            _ => return None,
        })
    }

    /// Does this event kind move payload bytes (vs. pure
    /// synchronization)?
    pub fn is_data(self) -> bool {
        matches!(
            self,
            EventKind::Put
                | EventKind::Get
                | EventKind::Amo
                | EventKind::BlockPut
                | EventKind::BlockGet
        )
    }
}

/// One communication event, as observed by the PE that issued it.
///
/// Timestamps come in a logical + clock pair: `seq` is the per-PE
/// logical position (0, 1, 2, … — backend-independent), `t_ns` is the
/// issuing PE's clock when the event *completed* (nanoseconds since job
/// start on [`ClockMode::Wall`], the logical clock value on
/// [`ClockMode::Virtual`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: EventKind,
    /// The PE that issued the operation.
    pub pe: u32,
    /// The target PE (the issuing PE itself for barriers/waits).
    pub peer: u32,
    /// Symmetric word offset the operation touched (0 for barriers).
    pub addr: u32,
    /// Payload bytes moved (0 for synchronization events).
    pub bytes: u32,
    /// Per-PE logical sequence number (the "logical timestamp").
    pub seq: u32,
    /// Completion time on the run's clock (wall or virtual ns).
    pub t_ns: u64,
}

impl TraceEvent {
    /// The backend-independent identity of the event: everything except
    /// the timestamps. Equivalence tests compare event streams by this.
    pub fn signature(&self) -> (char, u32, u32, u32) {
        (self.kind.code(), self.peer, self.addr, self.bytes)
    }
}

/// A bounded per-PE event sink. When the capacity is reached the
/// *earliest* events are kept (the timeline's beginning, where program
/// structure lives) and later ones are counted in
/// [`TraceBuffer::dropped`].
#[derive(Debug)]
pub struct TraceBuffer {
    pe: u32,
    cap: usize,
    events: Vec<TraceEvent>,
    dropped: u64,
    seq: u32,
}

impl TraceBuffer {
    /// A buffer for `pe` holding at most `cap` events.
    pub fn new(pe: usize, cap: usize) -> Self {
        TraceBuffer { pe: pe as u32, cap, events: Vec::new(), dropped: 0, seq: 0 }
    }

    /// Append one event; assigns the next logical sequence number.
    pub fn record(&mut self, kind: EventKind, peer: usize, addr: u32, bytes: u32, t_ns: u64) {
        let seq = self.seq;
        self.seq = self.seq.wrapping_add(1);
        if self.events.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent {
            kind,
            pe: self.pe,
            peer: peer as u32,
            addr,
            bytes,
            seq,
            t_ns,
        });
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that arrived after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Finish this PE's recording: consume the buffer into a
    /// [`PeTrace`], stamping the PE's final clock value.
    pub fn finish(self, end_ns: u64) -> PeTrace {
        PeTrace { events: self.events, dropped: self.dropped, end_ns }
    }
}

/// A *global* tracing budget: at most `cap` buffered events across the
/// whole job, sampled from every `stride`-th PE. This is what makes
/// tracing survive mega-scale runs — a fixed per-PE buffer times a
/// million PEs OOMs, a fixed global budget does not.
///
/// The spec is parsed from `<cap>[@<stride>]` with the same `k`
/// (×1024) and `m` (×1048576) suffixes the sweep grammar uses:
/// `64k@256` buffers at most 65,536 events total, sampled from PEs
/// 0, 256, 512, … Sampled-*out* PEs still run zero-capacity
/// [`TraceBuffer`]s, so every event they would have recorded is
/// counted in [`PeTrace::dropped`] — the `dropped` totals tell you
/// exactly how much of the timeline you are *not* seeing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSpec {
    /// Total buffered-event budget across all traced PEs.
    pub cap: usize,
    /// Sample every `stride`-th PE (1 = trace everyone).
    pub stride: usize,
}

impl TraceSpec {
    /// A spec tracing every PE under a global `cap`.
    pub fn new(cap: usize) -> Self {
        TraceSpec { cap, stride: 1 }
    }

    /// The per-PE buffer capacity that keeps the whole job within
    /// `cap`: the budget divided by the number of *traced* PEs, never
    /// below one event per traced PE.
    pub fn per_pe_cap(&self, n_pes: usize) -> usize {
        let traced = n_pes.div_ceil(self.stride.max(1)).max(1);
        (self.cap / traced).max(1)
    }

    /// Whether `pe` is in the sample.
    pub fn traces_pe(&self, pe: usize) -> bool {
        pe.is_multiple_of(self.stride.max(1))
    }
}

/// Parse `"400"`, `"64k"`, or `"1m@4k"` (cap, optionally `@` stride).
fn parse_scaled(s: &str) -> Result<usize, String> {
    let s = s.trim();
    let (digits, scale) = match s.chars().last() {
        Some('k') | Some('K') => (&s[..s.len() - 1], 1024usize),
        Some('m') | Some('M') => (&s[..s.len() - 1], 1024 * 1024),
        _ => (s, 1),
    };
    let n: usize =
        digits.parse().map_err(|_| format!("O NOES! {s:?} IZ NOT A COUNT (try 400, 64k OR 1m)"))?;
    n.checked_mul(scale).ok_or_else(|| format!("O NOES! {s:?} IZ 2 BIG"))
}

impl std::str::FromStr for TraceSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let (cap_s, stride_s) = match s.split_once('@') {
            Some((c, st)) => (c, Some(st)),
            None => (s, None),
        };
        let cap = parse_scaled(cap_s)?;
        if cap == 0 {
            return Err("O NOES! A TRACE BUDGET OF 0 TRACEZ NOTHIN (drop trace= instead)".into());
        }
        let stride = match stride_s {
            Some(st) => {
                let st = parse_scaled(st)?;
                if st == 0 {
                    return Err("O NOES! TRACE STRIDE 0 SAMPLEZ NO PE (use 1 for all)".into());
                }
                st
            }
            None => 1,
        };
        Ok(TraceSpec { cap, stride })
    }
}

impl std::fmt::Display for TraceSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.stride == 1 {
            write!(f, "{}", self.cap)
        } else {
            write!(f, "{}@{}", self.cap, self.stride)
        }
    }
}

/// One PE's completed event stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PeTrace {
    /// Events in issue order.
    pub events: Vec<TraceEvent>,
    /// Events lost to the buffer bound.
    pub dropped: u64,
    /// The PE's clock when it finished (wall or virtual ns).
    pub end_ns: u64,
}

impl PeTrace {
    /// The timestamp-free identity of this PE's stream (see
    /// [`TraceEvent::signature`]).
    pub fn signature(&self) -> Vec<(char, u32, u32, u32)> {
        self.events.iter().map(TraceEvent::signature).collect()
    }
}

/// A whole job's trace: one [`PeTrace`] per PE, plus the clock mode the
/// timestamps were taken on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Which clock `t_ns` values refer to.
    pub clock: ClockMode,
    /// Per-PE streams, in PE order.
    pub pes: Vec<PeTrace>,
}

/// PE×PE communication totals derived from a [`Trace`]
/// (see [`Trace::comm_matrix`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommMatrix {
    /// Number of PEs (the matrix is `n × n`, row = source).
    pub n: usize,
    /// Bytes moved from row-PE to column-PE, row-major.
    pub bytes: Vec<u64>,
    /// Operations issued from row-PE to column-PE, row-major.
    pub ops: Vec<u64>,
}

impl CommMatrix {
    /// Bytes sent from `from` to `to`.
    pub fn bytes_at(&self, from: usize, to: usize) -> u64 {
        self.bytes[from * self.n + to]
    }

    /// Operations issued from `from` to `to`.
    pub fn ops_at(&self, from: usize, to: usize) -> u64 {
        self.ops[from * self.n + to]
    }
}

impl Trace {
    /// Assemble a trace from per-PE streams.
    pub fn new(clock: ClockMode, pes: Vec<PeTrace>) -> Self {
        Trace { clock, pes }
    }

    /// Number of PEs traced.
    pub fn n_pes(&self) -> usize {
        self.pes.len()
    }

    /// Total events across all PEs.
    pub fn total_events(&self) -> usize {
        self.pes.iter().map(|p| p.events.len()).sum()
    }

    /// Total events lost to buffer bounds across all PEs.
    pub fn total_dropped(&self) -> u64 {
        self.pes.iter().map(|p| p.dropped).sum()
    }

    /// The latest clock value across PEs (the traced job's makespan on
    /// its own clock).
    pub fn end_ns(&self) -> u64 {
        self.pes.iter().map(|p| p.end_ns).max().unwrap_or(0)
    }

    /// The timestamp-free identity of the whole trace, per PE. Two
    /// backends ran "the same communication" iff these are equal.
    pub fn signature(&self) -> Vec<Vec<(char, u32, u32, u32)>> {
        self.pes.iter().map(PeTrace::signature).collect()
    }

    /// PE×PE bytes/ops moved by data events (puts count at the source,
    /// gets at the reader — both are attributed to the issuing PE's
    /// row).
    pub fn comm_matrix(&self) -> CommMatrix {
        let n = self.pes.len();
        let mut m = CommMatrix { n, bytes: vec![0; n * n], ops: vec![0; n * n] };
        for p in &self.pes {
            for e in &p.events {
                if e.kind.is_data() && (e.peer as usize) < n {
                    let slot = e.pe as usize * n + e.peer as usize;
                    m.bytes[slot] += e.bytes as u64;
                    m.ops[slot] += 1;
                }
            }
        }
        m
    }

    /// Replay the event streams under an arbitrary interconnect cost
    /// function and return the estimated makespan in nanoseconds.
    ///
    /// `delay_ns(from, to)` is charged (plus [`VIRT_OP_NS`]) for every
    /// remote event; barriers synchronize the replayed clocks to their
    /// maximum and add [`VIRT_BARRIER_NS`]. On a trace taken under
    /// [`ClockMode::Virtual`], replaying with the run's own latency
    /// model reproduces the virtual wall exactly, provided symmetric
    /// allocation happened before any communication (true for every
    /// language-backend program — both engines and the C stub set up
    /// the whole segment up front; a direct substrate user calling
    /// `shmalloc` mid-program inserts an *untraced* clock sync the
    /// replay cannot see). Replaying with a *different* model answers
    /// "what would this run have cost on that interconnect?" without
    /// re-running the program.
    pub fn critical_path(&self, delay_ns: impl Fn(usize, usize) -> u64) -> u64 {
        let n = self.pes.len();
        if n == 0 {
            return 0;
        }
        let mut t = vec![0u64; n];
        let mut cursor = vec![0usize; n];
        loop {
            // Advance every PE to its next barrier (or stream end).
            let mut at_barrier = 0usize;
            for pe in 0..n {
                while let Some(e) = self.pes[pe].events.get(cursor[pe]) {
                    match e.kind {
                        EventKind::BarrierEnter => {
                            at_barrier += 1;
                            break;
                        }
                        EventKind::BarrierExit => {
                            cursor[pe] += 1; // cost charged at the matching enter
                        }
                        _ => {
                            if e.peer != e.pe {
                                t[pe] += delay_ns(e.pe as usize, e.peer as usize) + VIRT_OP_NS;
                            }
                            cursor[pe] += 1;
                        }
                    }
                }
            }
            if at_barrier < n {
                // Some PE ran out of events (ragged streams end the
                // lockstep replay; the remaining tails were already
                // summed above).
                break;
            }
            let sync = t.iter().copied().max().unwrap_or(0) + VIRT_BARRIER_NS;
            for (pe, tt) in t.iter_mut().enumerate() {
                *tt = sync;
                cursor[pe] += 1; // step past the BarrierEnter
            }
        }
        t.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(buf: &mut TraceBuffer, kind: EventKind, peer: usize, bytes: u32, t: u64) {
        buf.record(kind, peer, 0, bytes, t);
    }

    fn two_pe_trace() -> Trace {
        let mut a = TraceBuffer::new(0, 1024);
        ev(&mut a, EventKind::Put, 1, 8, 5);
        ev(&mut a, EventKind::BarrierEnter, 0, 0, 5);
        ev(&mut a, EventKind::BarrierExit, 0, 0, 9);
        ev(&mut a, EventKind::Get, 1, 8, 12);
        let mut b = TraceBuffer::new(1, 1024);
        ev(&mut b, EventKind::BarrierEnter, 1, 0, 2);
        ev(&mut b, EventKind::BarrierExit, 1, 0, 9);
        Trace::new(ClockMode::Wall, vec![a.finish(12), b.finish(9)])
    }

    #[test]
    fn clock_mode_round_trips() {
        for m in ClockMode::ALL {
            assert_eq!(m.to_string().parse::<ClockMode>().unwrap(), m);
        }
        assert!("sundial".parse::<ClockMode>().is_err());
        assert_eq!(ClockMode::default(), ClockMode::Wall);
    }

    #[test]
    fn event_codes_round_trip() {
        for kind in [
            EventKind::Put,
            EventKind::Get,
            EventKind::Amo,
            EventKind::BlockPut,
            EventKind::BlockGet,
            EventKind::BarrierEnter,
            EventKind::BarrierExit,
            EventKind::LockAcquire,
            EventKind::LockTry,
            EventKind::LockRelease,
            EventKind::Wait,
        ] {
            assert_eq!(EventKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(EventKind::from_code('?'), None);
    }

    #[test]
    fn buffer_bounds_and_sequences() {
        let mut buf = TraceBuffer::new(3, 2);
        ev(&mut buf, EventKind::Put, 0, 8, 1);
        ev(&mut buf, EventKind::Put, 0, 8, 2);
        ev(&mut buf, EventKind::Put, 0, 8, 3); // over capacity
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 1);
        let pt = buf.finish(3);
        assert_eq!(pt.events[0].seq, 0);
        assert_eq!(pt.events[1].seq, 1);
        assert_eq!(pt.events[0].pe, 3);
        assert_eq!(pt.dropped, 1);
        assert_eq!(pt.end_ns, 3);
    }

    #[test]
    fn comm_matrix_attributes_data_events() {
        let t = two_pe_trace();
        let m = t.comm_matrix();
        assert_eq!(m.bytes_at(0, 1), 16); // put 8 + get 8
        assert_eq!(m.ops_at(0, 1), 2);
        assert_eq!(m.bytes_at(1, 0), 0);
        assert_eq!(m.ops_at(0, 0), 0, "barriers are not data");
    }

    #[test]
    fn signatures_ignore_timestamps() {
        let t = two_pe_trace();
        let sig = t.signature();
        assert_eq!(sig[0][0], ('P', 1, 0, 8));
        assert_eq!(sig[1][0], ('B', 1, 0, 0));
        // Same events at different times: identical signature.
        let mut a = TraceBuffer::new(0, 8);
        ev(&mut a, EventKind::Put, 1, 8, 999);
        assert_eq!(a.finish(999).signature()[0], sig[0][0]);
    }

    #[test]
    fn critical_path_replays_barrier_synchronization() {
        let t = two_pe_trace();
        // Uniform 100ns: PE0 pays 100+1 before the barrier, both sync
        // to 101+10, then PE0 pays another 101 → 212.
        let got = t.critical_path(|_, _| 100);
        assert_eq!(got, 101 + VIRT_BARRIER_NS + 101);
        // Free interconnect: only the op costs + barrier remain.
        assert_eq!(t.critical_path(|_, _| 0), 1 + VIRT_BARRIER_NS + 1);
    }

    #[test]
    fn critical_path_handles_empty_and_ragged_traces() {
        assert_eq!(Trace::default().critical_path(|_, _| 1), 0);
        // One PE barriers, the other has already finished: replay must
        // not deadlock.
        let mut a = TraceBuffer::new(0, 8);
        ev(&mut a, EventKind::BarrierEnter, 0, 0, 1);
        let b = TraceBuffer::new(1, 8);
        let t = Trace::new(ClockMode::Wall, vec![a.finish(1), b.finish(0)]);
        assert_eq!(t.critical_path(|_, _| 50), 0);
    }
}

#[cfg(test)]
mod trace_spec_tests {
    use super::TraceSpec;

    #[test]
    fn parses_suffixes_and_strides() {
        assert_eq!("400".parse::<TraceSpec>().unwrap(), TraceSpec { cap: 400, stride: 1 });
        assert_eq!("64k".parse::<TraceSpec>().unwrap(), TraceSpec { cap: 65_536, stride: 1 });
        assert_eq!("1m@4k".parse::<TraceSpec>().unwrap(), TraceSpec { cap: 1 << 20, stride: 4096 });
        assert_eq!("64K@2".parse::<TraceSpec>().unwrap(), TraceSpec { cap: 65_536, stride: 2 });
    }

    #[test]
    fn rejects_nonsense() {
        assert!("".parse::<TraceSpec>().is_err());
        assert!("0".parse::<TraceSpec>().is_err());
        assert!("4k@0".parse::<TraceSpec>().is_err());
        assert!("lots".parse::<TraceSpec>().is_err());
        assert!("4q".parse::<TraceSpec>().is_err());
        assert!("99999999999999999999m".parse::<TraceSpec>().is_err());
    }

    #[test]
    fn per_pe_cap_divides_the_global_budget() {
        let spec: TraceSpec = "64k@256".parse().unwrap();
        // 1M PEs sampled by 256 → 4096 traced PEs sharing 65,536.
        assert_eq!(spec.per_pe_cap(1 << 20), 16);
        assert!(spec.traces_pe(0) && spec.traces_pe(512) && !spec.traces_pe(513));
        // Tiny jobs still get at least one event per traced PE.
        assert_eq!(TraceSpec::new(2).per_pe_cap(64), 1);
        // Round-trips through Display.
        assert_eq!(spec.to_string(), "65536@256");
        assert_eq!(TraceSpec::new(400).to_string(), "400");
    }
}
