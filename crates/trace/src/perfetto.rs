//! Chrome `trace_event` JSON export — the format Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing` load directly.
//!
//! The mapping is deliberately simple: each PE becomes a *thread*
//! (`tid` = PE id) of one *process* (`pid` 0, the job), named via
//! `"M"` metadata events. Every traced operation becomes exactly one
//! complete (`"ph": "X"`) event:
//!
//! * barrier waits span their real duration — the matching
//!   [`EventKind::BarrierEnter`]/[`EventKind::BarrierExit`] pair turns
//!   into one `barrier` slice from enter to exit, so synchronization
//!   cost is *visible* as a block on the timeline;
//! * remote data and lock operations complete instantaneously on the
//!   issuing PE's clock (their latency is charged to the clock, not
//!   recorded as a span), so they export as zero-duration slices
//!   carrying `peer`/`addr`/`bytes`/`seq` in `args`.
//!
//! Timestamps are microseconds (the `trace_event` contract) with
//! nanosecond precision kept in the fraction, taken verbatim from the
//! trace's own clock — a [`ClockMode::Virtual`] trace therefore loads
//! as a deterministic, machine-independent timeline.
//!
//! [`ClockMode::Virtual`]: crate::ClockMode::Virtual

use crate::{EventKind, Trace};

/// Nanoseconds → fractional microseconds, exactly (no float rounding).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn slice_name(kind: EventKind) -> &'static str {
    match kind {
        EventKind::Put => "put",
        EventKind::Get => "get",
        EventKind::Amo => "amo",
        EventKind::BlockPut => "block_put",
        EventKind::BlockGet => "block_get",
        EventKind::BarrierEnter | EventKind::BarrierExit => "barrier",
        EventKind::LockAcquire => "lock_acquire",
        EventKind::LockTry => "lock_try",
        EventKind::LockRelease => "lock_release",
        EventKind::Wait => "wait",
    }
}

fn category(kind: EventKind) -> &'static str {
    match kind {
        k if k.is_data() => "comm",
        EventKind::LockAcquire | EventKind::LockTry | EventKind::LockRelease => "lock",
        _ => "sync",
    }
}

impl Trace {
    /// Render the trace as Chrome `trace_event` JSON (object form,
    /// `{"traceEvents": […]}`) — load the output straight into
    /// Perfetto. The module docs in `perfetto.rs` describe the event
    /// mapping.
    pub fn to_perfetto(&self) -> String {
        let mut events: Vec<String> = Vec::with_capacity(self.total_events() + self.n_pes());
        for (pe, p) in self.pes.iter().enumerate() {
            events.push(format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {pe}, \
                 \"args\": {{\"name\": \"PE {pe}\"}}}}"
            ));
            let mut enter: Option<u64> = None;
            for e in &p.events {
                match e.kind {
                    EventKind::BarrierEnter => enter = Some(e.t_ns),
                    EventKind::BarrierExit => {
                        let from = enter.take().unwrap_or(e.t_ns);
                        events.push(format!(
                            "{{\"name\": \"barrier\", \"cat\": \"sync\", \"ph\": \"X\", \
                             \"ts\": {}, \"dur\": {}, \"pid\": 0, \"tid\": {pe}, \
                             \"args\": {{\"seq\": {}, \"wait_ns\": {}}}}}",
                            us(from),
                            us(e.t_ns.saturating_sub(from)),
                            e.seq,
                            e.t_ns.saturating_sub(from)
                        ));
                    }
                    kind => {
                        events.push(format!(
                            "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \
                             \"ts\": {}, \"dur\": 0, \"pid\": 0, \"tid\": {pe}, \
                             \"args\": {{\"peer\": {}, \"addr\": {}, \"bytes\": {}, \"seq\": {}}}}}",
                            slice_name(kind),
                            category(kind),
                            us(e.t_ns),
                            e.peer,
                            e.addr,
                            e.bytes,
                            e.seq
                        ));
                    }
                }
            }
            // An enter with no exit (stream truncated by the buffer
            // bound): keep the op visible as a zero-duration slice.
            if let Some(from) = enter {
                events.push(format!(
                    "{{\"name\": \"barrier\", \"cat\": \"sync\", \"ph\": \"X\", \
                     \"ts\": {}, \"dur\": 0, \"pid\": 0, \"tid\": {pe}, \
                     \"args\": {{\"truncated\": true}}}}",
                    us(from)
                ));
            }
        }
        format!(
            "{{\"displayTimeUnit\": \"ns\", \"otherData\": {{\"clock\": \"{}\", \"pes\": {}, \
             \"dropped_events\": {}}}, \"traceEvents\": [\n{}\n]}}",
            self.clock,
            self.n_pes(),
            self.total_dropped(),
            events.join(",\n")
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::{ClockMode, EventKind, Trace, TraceBuffer};

    fn sample() -> Trace {
        let mut a = TraceBuffer::new(0, 64);
        a.record(EventKind::Put, 1, 3, 8, 1500);
        a.record(EventKind::BarrierEnter, 0, 0, 0, 2000);
        a.record(EventKind::BarrierExit, 0, 0, 0, 5250);
        let mut b = TraceBuffer::new(1, 64);
        b.record(EventKind::Get, 0, 3, 8, 900);
        b.record(EventKind::LockAcquire, 0, 7, 0, 1000);
        Trace::new(ClockMode::Virtual, vec![a.finish(5250), b.finish(1000)])
    }

    #[test]
    fn every_remote_op_is_one_complete_event() {
        let t = sample();
        let json = t.to_perfetto();
        // 2 data ops + 1 lock + 1 barrier pair = 4 "X" slices.
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 4);
        assert_eq!(json.matches("\"cat\": \"comm\"").count(), 2);
        assert_eq!(json.matches("\"ph\": \"M\"").count(), 2, "one thread_name per PE");
        assert!(json.contains("\"name\": \"put\""));
        assert!(json.contains("\"name\": \"lock_acquire\""));
    }

    #[test]
    fn barrier_pairs_become_real_duration_slices() {
        let json = sample().to_perfetto();
        // Enter at 2000ns, exit at 5250ns → ts 2.000µs, dur 3.250µs.
        assert!(json.contains("\"ts\": 2.000, \"dur\": 3.250"), "{json}");
        assert!(json.contains("\"wait_ns\": 3250"));
    }

    #[test]
    fn unmatched_barrier_enter_stays_visible() {
        let mut a = TraceBuffer::new(0, 64);
        a.record(EventKind::BarrierEnter, 0, 0, 0, 100);
        let t = Trace::new(ClockMode::Wall, vec![a.finish(100)]);
        let json = t.to_perfetto();
        assert!(json.contains("\"truncated\": true"), "{json}");
    }

    #[test]
    fn header_carries_clock_and_drop_accounting() {
        let json = sample().to_perfetto();
        assert!(json.starts_with("{\"displayTimeUnit\": \"ns\""));
        assert!(json.contains("\"clock\": \"virtual\""));
        assert!(json.contains("\"pes\": 2"));
        assert!(json.trim_end().ends_with("]}"));
    }
}
