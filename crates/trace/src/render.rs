//! Human-facing renderings of a [`Trace`]: an ASCII Gantt timeline, a
//! dependency-free SVG, a communication-matrix table and a flat event
//! log. All output is plain `String` — nothing here touches the
//! filesystem or any external crate.

use crate::{CommMatrix, EventKind, Trace};

impl Trace {
    /// A flat, grep-friendly event log: one line per event in per-PE
    /// issue order.
    pub fn event_log(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# trace: {} PEs, {} events, clock {}\n",
            self.n_pes(),
            self.total_events(),
            self.clock
        ));
        for (pe, p) in self.pes.iter().enumerate() {
            for e in &p.events {
                out.push_str(&format!(
                    "PE{} #{:<5} t={:<12} {:12} peer={} addr={} bytes={}\n",
                    e.pe,
                    e.seq,
                    e.t_ns,
                    format!("{:?}", e.kind),
                    e.peer,
                    e.addr,
                    e.bytes
                ));
            }
            if p.dropped > 0 {
                // The lane index is the PE id (streams are in PE
                // order); a fully-dropped buffer has no event to ask.
                out.push_str(&format!("PE{pe} … {} events dropped (buffer full)\n", p.dropped));
            }
        }
        out
    }

    /// An ASCII Gantt chart: one lane per PE, time left-to-right scaled
    /// to `width` columns. Barrier waits render as `=` spans (enter to
    /// exit — the visible cost of synchronization); data and lock
    /// events render as their [`EventKind::code`] glyph at their
    /// completion column.
    pub fn gantt(&self, width: usize) -> String {
        let width = width.max(16);
        let span = self.end_ns().max(1);
        let col =
            |t: u64| (((t as u128 * (width as u128 - 1)) / span as u128) as usize).min(width - 1);
        let mut out = String::new();
        out.push_str(&format!(
            "time 0 .. {} ns ({} clock), one lane per PE ('=' barrier wait, letters = ops)\n",
            span, self.clock
        ));
        for (pe, p) in self.pes.iter().enumerate() {
            let mut lane = vec!['·'; width];
            let mut enter: Option<u64> = None;
            for e in &p.events {
                match e.kind {
                    EventKind::BarrierEnter => enter = Some(e.t_ns),
                    EventKind::BarrierExit => {
                        let from = col(enter.take().unwrap_or(e.t_ns));
                        for c in lane.iter_mut().take(col(e.t_ns) + 1).skip(from) {
                            *c = '=';
                        }
                    }
                    kind => lane[col(e.t_ns)] = kind.code(),
                }
            }
            // End-of-lane marker so idle tails are visible.
            let end = col(p.end_ns.min(span));
            if lane[end] == '·' {
                lane[end] = '|';
            }
            out.push_str(&format!("PE {pe:>3} {}", lane.into_iter().collect::<String>()));
            if p.dropped > 0 {
                out.push_str(&format!("  (+{} dropped)", p.dropped));
            }
            out.push('\n');
        }
        out
    }

    /// A self-contained SVG timeline (no external dependencies, no
    /// scripts): one horizontal lane per PE, gray spans for barrier
    /// waits, colored ticks for events, a labelled time axis. Suitable
    /// for writing straight to a `.svg` file and opening in a browser.
    pub fn to_svg(&self) -> String {
        const LANE_H: u64 = 26;
        const LEFT: u64 = 64;
        const PLOT_W: u64 = 920;
        const TOP: u64 = 34;
        let n = self.n_pes() as u64;
        let span = self.end_ns().max(1);
        let w = LEFT + PLOT_W + 20;
        let h = TOP + n * LANE_H + 30;
        let x = |t: u64| LEFT + (t as u128 * PLOT_W as u128 / span as u128) as u64;
        let color = |k: EventKind| match k {
            EventKind::Put | EventKind::BlockPut => "#d62728",
            EventKind::Get | EventKind::BlockGet => "#1f77b4",
            EventKind::Amo => "#9467bd",
            EventKind::LockAcquire | EventKind::LockTry | EventKind::LockRelease => "#ff7f0e",
            EventKind::Wait => "#8c564b",
            EventKind::BarrierEnter | EventKind::BarrierExit => "#7f7f7f",
        };
        let mut s = String::new();
        s.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
             viewBox=\"0 0 {w} {h}\" font-family=\"monospace\" font-size=\"11\">\n"
        ));
        s.push_str(&format!(
            "<text x=\"{LEFT}\" y=\"16\">lol-trace timeline — {} PEs, {} events, 0..{span} ns ({} clock)</text>\n",
            self.n_pes(),
            self.total_events(),
            self.clock
        ));
        for (pe, p) in self.pes.iter().enumerate() {
            let y = TOP + pe as u64 * LANE_H;
            let mid = y + LANE_H / 2;
            s.push_str(&format!("<text x=\"6\" y=\"{}\">PE {pe}</text>\n", mid + 4));
            s.push_str(&format!(
                "<line x1=\"{LEFT}\" y1=\"{mid}\" x2=\"{}\" y2=\"{mid}\" stroke=\"#ddd\"/>\n",
                x(p.end_ns.min(span))
            ));
            let mut enter: Option<u64> = None;
            for e in &p.events {
                match e.kind {
                    EventKind::BarrierEnter => enter = Some(e.t_ns),
                    EventKind::BarrierExit => {
                        let entered = enter.take().unwrap_or(e.t_ns);
                        let x0 = x(entered);
                        let x1 = x(e.t_ns).max(x0 + 1);
                        s.push_str(&format!(
                            "<rect x=\"{x0}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"#bbb\" \
                             opacity=\"0.6\"><title>PE {pe} barrier wait: {} ns</title></rect>\n",
                            y + 4,
                            x1 - x0,
                            LANE_H - 8,
                            e.t_ns.saturating_sub(entered)
                        ));
                    }
                    kind => {
                        let xe = x(e.t_ns);
                        s.push_str(&format!(
                            "<line x1=\"{xe}\" y1=\"{}\" x2=\"{xe}\" y2=\"{}\" stroke=\"{}\" \
                             stroke-width=\"2\"><title>PE {pe} #{}: {:?} peer={} addr={} bytes={} @ {} ns</title></line>\n",
                            y + 5,
                            y + LANE_H - 5,
                            color(kind),
                            e.seq,
                            kind,
                            e.peer,
                            e.addr,
                            e.bytes,
                            e.t_ns
                        ));
                    }
                }
            }
        }
        let axis_y = TOP + n * LANE_H + 8;
        s.push_str(&format!(
            "<line x1=\"{LEFT}\" y1=\"{axis_y}\" x2=\"{}\" y2=\"{axis_y}\" stroke=\"#333\"/>\n",
            LEFT + PLOT_W
        ));
        s.push_str(&format!("<text x=\"{LEFT}\" y=\"{}\">0</text>\n", axis_y + 14));
        s.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" text-anchor=\"end\">{span} ns</text>\n",
            LEFT + PLOT_W,
            axis_y + 14
        ));
        s.push_str("</svg>\n");
        s
    }
}

impl CommMatrix {
    /// Render the matrix as an aligned table (`bytes` per source →
    /// destination pair, with per-source totals).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("communication matrix (bytes from row PE to column PE)\n");
        out.push_str("        ");
        for to in 0..self.n {
            out.push_str(&format!("{to:>10}"));
        }
        out.push_str("     total\n");
        for from in 0..self.n {
            out.push_str(&format!("PE {from:>4} "));
            let mut total = 0u64;
            for to in 0..self.n {
                let b = self.bytes_at(from, to);
                total += b;
                if b == 0 {
                    out.push_str(&format!("{:>10}", "."));
                } else {
                    out.push_str(&format!("{b:>10}"));
                }
            }
            out.push_str(&format!("{total:>10}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{ClockMode, EventKind, Trace, TraceBuffer};

    fn sample() -> Trace {
        let mut a = TraceBuffer::new(0, 64);
        a.record(EventKind::Put, 1, 3, 8, 10);
        a.record(EventKind::BarrierEnter, 0, 0, 0, 12);
        a.record(EventKind::BarrierExit, 0, 0, 0, 40);
        let mut b = TraceBuffer::new(1, 64);
        b.record(EventKind::BarrierEnter, 1, 0, 0, 30);
        b.record(EventKind::BarrierExit, 1, 0, 0, 40);
        b.record(EventKind::Get, 0, 3, 8, 55);
        Trace::new(ClockMode::Virtual, vec![a.finish(40), b.finish(55)])
    }

    #[test]
    fn gantt_has_one_lane_per_pe_with_barrier_spans() {
        let g = sample().gantt(60);
        assert!(g.contains("PE   0"));
        assert!(g.contains("PE   1"));
        assert!(g.contains('='), "barrier wait must render: {g}");
        assert!(g.contains('P') && g.contains('G'), "{g}");
        assert!(g.contains("virtual clock"));
    }

    #[test]
    fn svg_is_self_contained_and_balanced() {
        let svg = sample().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("PE 0") && svg.contains("PE 1"));
        assert!(svg.contains("<rect"), "barrier wait rect");
        assert!(!svg.contains("<script"), "SVG must stay passive");
        assert_eq!(svg.matches("<rect").count(), svg.matches("</rect>").count());
        assert_eq!(svg.matches("<title").count(), svg.matches("</title>").count());
    }

    #[test]
    fn matrix_render_and_event_log() {
        let t = sample();
        let m = t.comm_matrix().render();
        assert!(m.contains("PE    0"));
        assert!(m.contains('8'), "{m}");
        let log = t.event_log();
        assert!(log.contains("Put") && log.contains("Get"));
        assert!(log.contains("peer=1"));
    }
}
