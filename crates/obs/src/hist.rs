//! Fixed-bucket log₂ latency histograms.
//!
//! Buckets are powers of two: bucket *i* counts observations `v` with
//! `2^(i-1) < v <= 2^i` (bucket 0 holds `v <= 1`), plus one overflow
//! bucket past `2^(BUCKETS-1)`. With nanosecond observations the top
//! finite bucket is `2^39` ns ≈ 9.2 minutes — far beyond any request
//! the service will serve — so overflow is a signal, not a rounding
//! error. The layout is fixed at compile time: observing is two
//! relaxed atomic adds (bucket + sum), allocation-free and lock-free,
//! cheap enough to sit on every request path.
//!
//! Quantiles are *exact over the bucket counts*: the reported p99 is
//! the smallest bucket upper bound whose cumulative count reaches
//! `ceil(0.99 · N)`. That makes quantile extraction deterministic and
//! reproducible from a scrape — the same arithmetic any Prometheus
//! `histogram_quantile` would do, minus the interpolation guesswork.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of finite buckets (upper bounds `2^0 .. 2^(BUCKETS-1)`).
pub const BUCKETS: usize = 40;

/// A log₂-bucketed distribution (see the module docs).
#[derive(Debug)]
pub struct Histogram {
    /// `counts[i]` = observations in bucket `i`; `counts[BUCKETS]` is
    /// the overflow bucket.
    counts: [AtomicU64; BUCKETS + 1],
    /// Sum of all observed values (saturating).
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { counts: std::array::from_fn(|_| AtomicU64::new(0)), sum: AtomicU64::new(0) }
    }
}

/// Bucket index for an observation: `ceil(log2(v))`, clamped to the
/// overflow bucket.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v <= 1 {
        return 0;
    }
    let idx = (64 - (v - 1).leading_zeros()) as usize;
    idx.min(BUCKETS)
}

/// Upper bound of finite bucket `i` (`2^i`).
#[inline]
fn upper_bound(i: usize) -> u64 {
    1u64 << i
}

impl Histogram {
    /// A fresh, empty histogram (use [`Registry::histogram`] for one
    /// that shows up in the exposition).
    ///
    /// [`Registry::histogram`]: crate::Registry::histogram
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The `num/den` quantile as a bucket upper bound: the smallest
    /// bound whose cumulative count reaches `ceil(count · num / den)`.
    /// Returns 0 for an empty histogram and `u64::MAX` when the rank
    /// lands in the overflow bucket.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = (total * num).div_ceil(den).max(1);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.counts[i].load(Ordering::Relaxed);
            if seen >= rank {
                return upper_bound(i);
            }
        }
        u64::MAX
    }

    /// Median (see [`quantile`](Histogram::quantile) for semantics).
    pub fn p50(&self) -> u64 {
        self.quantile(50, 100)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(90, 100)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(99, 100)
    }

    /// Append the Prometheus exposition lines for this series:
    /// cumulative `_bucket{le=…}` samples, `_sum` and `_count`.
    pub(crate) fn render_into(&self, out: &mut String, name: &str, labels: &str) {
        let mut cumulative = 0u64;
        for i in 0..BUCKETS {
            let n = self.counts[i].load(Ordering::Relaxed);
            if n == 0 && i > 0 && cumulative == 0 {
                // Skip the leading run of empty buckets (bucket 0 is
                // always emitted) to keep scrapes readable; cumulative
                // correctness is unaffected because nothing has been
                // counted yet.
                continue;
            }
            cumulative += n;
            let le = upper_bound(i).to_string();
            out.push_str(&crate::sample_line(
                &format!("{name}_bucket"),
                labels,
                &[("le", &le)],
                &cumulative.to_string(),
            ));
        }
        cumulative += self.counts[BUCKETS].load(Ordering::Relaxed);
        out.push_str(&crate::sample_line(
            &format!("{name}_bucket"),
            labels,
            &[("le", "+Inf")],
            &cumulative.to_string(),
        ));
        out.push_str(&crate::sample_line(
            &format!("{name}_sum"),
            labels,
            &[],
            &self.sum().to_string(),
        ));
        out.push_str(&crate::sample_line(
            &format!("{name}_count"),
            labels,
            &[],
            &cumulative.to_string(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // v <= 1 lands in bucket 0; each power of two is the *upper*
        // bound of its bucket; one past it spills into the next.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(5), 3);
        for i in 1..BUCKETS {
            let bound = upper_bound(i);
            assert_eq!(bucket_of(bound), i, "2^{i} must be the upper bound of bucket {i}");
            assert_eq!(bucket_of(bound + 1), i + 1, "2^{i}+1 must spill over");
        }
    }

    #[test]
    fn overflow_bucket_catches_the_tail() {
        let h = Histogram::new();
        h.observe(u64::MAX);
        h.observe(upper_bound(BUCKETS - 1) + 1);
        h.observe(upper_bound(BUCKETS - 1)); // largest finite value
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(100, 100), u64::MAX, "p100 is in the overflow bucket");
        assert_eq!(h.quantile(1, 100), upper_bound(BUCKETS - 1));
    }

    #[test]
    fn quantiles_are_exact_over_bucket_counts() {
        let h = Histogram::new();
        // 100 observations of 3 (bucket le=4), then one of 1000
        // (bucket le=1024).
        for _ in 0..100 {
            h.observe(3);
        }
        h.observe(1000);
        assert_eq!(h.p50(), 4);
        assert_eq!(h.p90(), 4);
        assert_eq!(h.p99(), 4, "rank ceil(0.99·101)=100 still lands in le=4");
        assert_eq!(h.quantile(100, 100), 1024);
        assert_eq!(h.sum(), 300 + 1000);
        // Empty histogram: all quantiles are 0.
        assert_eq!(Histogram::new().p99(), 0);
    }

    #[test]
    fn exposition_is_cumulative_and_parses() {
        let reg = crate::Registry::new();
        let h = reg.histogram("lat_ns", "Latency.", &[("route", "run")]);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(u64::MAX);
        let body = reg.render();
        let samples = crate::parse_exposition(&body).expect("histogram exposition must parse");
        let get = |le: &str| {
            crate::sample_value(&samples, "lat_ns_bucket", &[("route", "run"), ("le", le)])
        };
        assert_eq!(get("1"), Some(1.0));
        assert_eq!(get("2"), Some(2.0));
        assert_eq!(get("4"), Some(3.0));
        assert_eq!(get("+Inf"), Some(4.0));
        assert_eq!(crate::sample_value(&samples, "lat_ns_count", &[("route", "run")]), Some(4.0));
        assert!(body.contains("# TYPE lat_ns histogram"));
    }
}
