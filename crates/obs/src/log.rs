//! Structured JSONL event logging (`lold --access-log`).
//!
//! One JSON object per line, append-only, flushed per event so a
//! `tail -f` (or a crashed daemon) never sees a torn record. Every
//! event automatically carries a `ts_ms` wall-clock timestamp
//! (milliseconds since the Unix epoch); callers supply the rest as
//! typed [`Field`]s, so the writer — not fifteen call sites — owns the
//! JSON escaping.

use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// One typed value in an event record.
#[derive(Clone, Copy, Debug)]
pub enum Field<'a> {
    /// A JSON string (escaped by the writer).
    Str(&'a str),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A boolean.
    Bool(bool),
}

/// A shared, append-only JSONL sink.
pub struct EventLog {
    w: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl EventLog {
    /// Open (create or append to) the log file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(EventLog::from_writer(Box::new(file)))
    }

    /// Wrap an arbitrary writer (tests use an in-memory buffer).
    pub fn from_writer(w: Box<dyn Write + Send>) -> Self {
        EventLog { w: Mutex::new(BufWriter::new(w)) }
    }

    /// Append one event. Write errors are reported, not panicked —
    /// the caller decides whether a full disk should take the service
    /// down (for an opt-in access log it should not).
    pub fn log(&self, fields: &[(&str, Field<'_>)]) -> io::Result<()> {
        let ts_ms =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0);
        let mut line = String::with_capacity(64);
        line.push_str(&format!("{{\"ts_ms\": {ts_ms}"));
        for (key, value) in fields {
            line.push_str(&format!(", \"{}\": ", escape(key)));
            match value {
                Field::Str(s) => line.push_str(&format!("\"{}\"", escape(s))),
                Field::U64(n) => line.push_str(&n.to_string()),
                Field::I64(n) => line.push_str(&n.to_string()),
                Field::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
            }
        }
        line.push_str("}\n");
        let mut w = self.w.lock().unwrap();
        w.write_all(line.as_bytes())?;
        w.flush()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A Write that appends into a shared Vec so the test can read
    /// back what the log wrote.
    #[derive(Clone)]
    struct Sink(Arc<StdMutex<Vec<u8>>>);

    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_are_one_json_object_per_line() {
        let sink = Sink(Arc::new(StdMutex::new(Vec::new())));
        let log = EventLog::from_writer(Box::new(sink.clone()));
        log.log(&[
            ("method", Field::Str("POST")),
            ("path", Field::Str("/run")),
            ("status", Field::U64(200)),
            ("dur_ns", Field::U64(123_456)),
            ("ok", Field::Bool(true)),
        ])
        .unwrap();
        log.log(&[("path", Field::Str("/weird\"quote\nline"))]).unwrap();

        let bytes = sink.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with("{\"ts_ms\": "), "every record opens with the timestamp");
            assert!(line.ends_with('}'));
        }
        assert!(lines[0].contains("\"status\": 200"));
        assert!(lines[0].contains("\"ok\": true"));
        assert!(lines[1].contains("/weird\\\"quote\\nline"));
    }
}
