//! # lol-obs — observability primitives for the LOLCODE toolchain
//!
//! The paper's whole point is making parallel-execution behaviour
//! *visible* (IPPS 2017 §I): students should be able to see where time
//! goes, from the lexer to the scheduler to the socket. This crate is
//! the shared measurement layer behind that — a process-wide metric
//! [`Registry`] of atomic [`Counter`]s, [`Gauge`]s and fixed-bucket
//! log₂ [`Histogram`]s, rendered in the Prometheus text exposition
//! format (`GET /metrics` on `lold`), plus a structured JSONL
//! [`EventLog`] writer for per-request access logs.
//!
//! Like every other crate in the workspace it is std-only and
//! dependency-free, and the hot paths are lock-free: a counter bump is
//! one relaxed atomic add, a histogram observation is two. The only
//! lock in the crate guards registry *shape* (creating a family or a
//! labelled series) and the event-log writer — neither is on a
//! request's fast path once the handles are cached.
//!
//! The exposition renderer has a strict inverse, [`parse_exposition`],
//! used by the tests (line-by-line validity) and by `lold-bench`
//! (scrape `/metrics` before/after a run and report the deltas).

#![forbid(unsafe_code)]

mod hist;
mod log;

pub use hist::{Histogram, BUCKETS};
pub use log::{EventLog, Field};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing count. Bumping is one relaxed atomic
/// add; reading is one relaxed load.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// A free-standing counter (use [`Registry::counter`] for one that
    /// shows up in the exposition).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }

    /// Overwrite the total. For mirroring an *externally maintained*
    /// monotonic count (e.g. the artifact cache's own hit counter)
    /// into the exposition at scrape time — never for decrementing.
    pub fn store(&self, v: u64) {
        self.v.store(v, Ordering::Relaxed);
    }
}

/// A value that can go up and down (queue depth, busy workers).
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// A free-standing gauge (use [`Registry::gauge`] for one that
    /// shows up in the exposition).
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Set the value.
    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Add (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.v.fetch_add(d, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// What kind of metric a family holds (one kind per name, enforced).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic count.
    Counter,
    /// Up/down value.
    Gauge,
    /// log₂-bucketed distribution.
    Histogram,
}

impl MetricKind {
    fn exposition_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    help: String,
    kind: MetricKind,
    /// Keyed by the rendered label set (`""` for the bare series), so
    /// iteration — and therefore the exposition — is deterministic.
    series: BTreeMap<String, Series>,
}

/// A named collection of metric families, rendered with [`Registry::render`].
///
/// Handles returned by [`counter`](Registry::counter) /
/// [`gauge`](Registry::gauge) / [`histogram`](Registry::histogram) are
/// `Arc`s: call once at startup, cache the handle, bump it lock-free
/// forever after. Calling again with the same name and labels returns
/// the same underlying metric (get-or-create), which is what makes
/// per-SRV-code error counters safe to create lazily.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get-or-create the counter `name{labels}`.
    ///
    /// # Panics
    /// If `name` already exists with a different metric kind — that is
    /// a programming error, not a runtime condition.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.series(name, help, MetricKind::Counter, labels, || {
            Series::Counter(Arc::new(Counter::new()))
        }) {
            Series::Counter(c) => c,
            _ => unreachable!("kind checked by series()"),
        }
    }

    /// Get-or-create the gauge `name{labels}`.
    ///
    /// # Panics
    /// If `name` already exists with a different metric kind.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self
            .series(name, help, MetricKind::Gauge, labels, || Series::Gauge(Arc::new(Gauge::new())))
        {
            Series::Gauge(g) => g,
            _ => unreachable!("kind checked by series()"),
        }
    }

    /// Get-or-create the histogram `name{labels}`.
    ///
    /// # Panics
    /// If `name` already exists with a different metric kind.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.series(name, help, MetricKind::Histogram, labels, || {
            Series::Histogram(Arc::new(Histogram::new()))
        }) {
            Series::Histogram(h) => h,
            _ => unreachable!("kind checked by series()"),
        }
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
    ) -> Series {
        debug_assert!(valid_name(name), "bad metric name {name:?}");
        let key = label_key(labels);
        let mut families = self.families.lock().unwrap();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(family.kind, kind, "metric {name} registered twice with different kinds");
        let series = family.series.entry(key).or_insert_with(make);
        match series {
            Series::Counter(c) => Series::Counter(c.clone()),
            Series::Gauge(g) => Series::Gauge(g.clone()),
            Series::Histogram(h) => Series::Histogram(h.clone()),
        }
    }

    /// Render the whole registry in the Prometheus text exposition
    /// format (version 0.0.4): `# HELP` / `# TYPE` per family, one
    /// line per sample, families and series in deterministic
    /// (lexicographic) order.
    pub fn render(&self) -> String {
        let families = self.families.lock().unwrap();
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.exposition_name()));
            for (labels, series) in family.series.iter() {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&sample_line(name, labels, &[], &c.get().to_string()));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&sample_line(name, labels, &[], &g.get().to_string()));
                    }
                    Series::Histogram(h) => h.render_into(&mut out, name, labels),
                }
            }
        }
        out
    }
}

/// `true` for a legal Prometheus metric name.
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Canonical rendered label set: sorted by label name, values escaped.
/// `""` when there are no labels.
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort();
    let body: Vec<String> =
        sorted.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    format!("{{{}}}", body.join(","))
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// One exposition sample line. `labels` is the pre-rendered label set
/// (`{a="b"}` or `""`); `extra` label pairs (e.g. histogram `le`) are
/// merged inside the braces.
pub(crate) fn sample_line(name: &str, labels: &str, extra: &[(&str, &str)], value: &str) -> String {
    if extra.is_empty() {
        return format!("{name}{labels} {value}\n");
    }
    let extras: Vec<String> =
        extra.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    let merged = if labels.is_empty() {
        format!("{{{}}}", extras.join(","))
    } else {
        // `{a="b"}` -> `{a="b",le="…"}`
        format!("{},{}}}", &labels[..labels.len() - 1], extras.join(","))
    };
    format!("{name}{merged} {value}\n")
}

/// One sample parsed back out of an exposition body.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name (`lold_requests_total`).
    pub name: String,
    /// Label pairs in textual order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// `true` when this sample carries every label in `want` with the
    /// given values (extra labels are allowed).
    pub fn has_labels(&self, want: &[(&str, &str)]) -> bool {
        want.iter().all(|(k, v)| self.labels.iter().any(|(lk, lv)| lk == k && lv == v))
    }
}

/// Strict line-by-line parse of a Prometheus text exposition body —
/// the inverse of [`Registry::render`], used by the tests and by
/// `lold-bench`'s before/after scrape. Returns every sample, or the
/// first offending line.
pub fn parse_exposition(body: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (i, line) in body.lines().enumerate() {
        let fail = |why: &str| format!("line {}: {why}: {line:?}", i + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let (keyword, rest) = rest.split_once(' ').ok_or_else(|| fail("bare comment"))?;
            match keyword {
                "HELP" => {
                    let (name, _) = rest.split_once(' ').unwrap_or((rest, ""));
                    if !valid_name(name) {
                        return Err(fail("HELP names an invalid metric"));
                    }
                }
                "TYPE" => {
                    let (name, ty) =
                        rest.split_once(' ').ok_or_else(|| fail("TYPE needs a kind"))?;
                    if !valid_name(name) {
                        return Err(fail("TYPE names an invalid metric"));
                    }
                    if !matches!(ty, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                        return Err(fail("unknown metric type"));
                    }
                }
                _ => return Err(fail("unknown comment keyword")),
            }
            continue;
        }
        samples.push(parse_sample(line).map_err(|why| fail(&why))?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let bytes = line.as_bytes();
    let mut pos = 0;
    while pos < bytes.len()
        && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_' || bytes[pos] == b':')
    {
        pos += 1;
    }
    let name = &line[..pos];
    if !valid_name(name) {
        return Err("invalid metric name".to_string());
    }
    let mut labels = Vec::new();
    if bytes.get(pos) == Some(&b'{') {
        pos += 1;
        loop {
            if bytes.get(pos) == Some(&b'}') {
                pos += 1;
                break;
            }
            let key_start = pos;
            while pos < bytes.len() && bytes[pos] != b'=' {
                pos += 1;
            }
            let key = line[key_start..pos].to_string();
            if key.is_empty() {
                return Err("empty label name".to_string());
            }
            pos += 1; // '='
            if bytes.get(pos) != Some(&b'"') {
                return Err("label value must be quoted".to_string());
            }
            pos += 1;
            let mut value = String::new();
            loop {
                match bytes.get(pos) {
                    None => return Err("unterminated label value".to_string()),
                    Some(b'"') => {
                        pos += 1;
                        break;
                    }
                    Some(b'\\') => {
                        pos += 1;
                        match bytes.get(pos) {
                            Some(b'\\') => value.push('\\'),
                            Some(b'"') => value.push('"'),
                            Some(b'n') => value.push('\n'),
                            _ => return Err("bad escape in label value".to_string()),
                        }
                        pos += 1;
                    }
                    Some(_) => {
                        let ch = line[pos..].chars().next().expect("in-bounds char");
                        value.push(ch);
                        pos += ch.len_utf8();
                    }
                }
            }
            labels.push((key, value));
            match bytes.get(pos) {
                Some(b',') => pos += 1,
                Some(b'}') => {}
                _ => return Err("expected , or } after a label".to_string()),
            }
        }
    }
    let rest = line[pos..].trim();
    if rest.is_empty() {
        return Err("sample has no value".to_string());
    }
    let value: f64 = match rest {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        n => n.parse().map_err(|_| format!("bad sample value {n:?}"))?,
    };
    Ok(Sample { name: name.to_string(), labels, value })
}

/// Convenience over [`parse_exposition`] output: the value of
/// `name{labels…}` (first match), if present.
pub fn sample_value(samples: &[Sample], name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    samples.iter().find(|s| s.name == name && s.has_labels(labels)).map(|s| s.value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("lol_requests_total", "Requests served.", &[("route", "run")]);
        c.inc();
        c.add(2);
        let again = reg.counter("lol_requests_total", "Requests served.", &[("route", "run")]);
        again.inc();
        assert_eq!(c.get(), 4, "same (name, labels) must be the same counter");
        let g = reg.gauge("lol_queue_depth", "Queue depth.", &[]);
        g.set(3);
        g.dec();
        assert_eq!(g.get(), 2);

        let body = reg.render();
        let samples = parse_exposition(&body).expect("rendered exposition must parse");
        assert_eq!(sample_value(&samples, "lol_requests_total", &[("route", "run")]), Some(4.0));
        assert_eq!(sample_value(&samples, "lol_queue_depth", &[]), Some(2.0));
        assert!(body.contains("# TYPE lol_requests_total counter"));
        assert!(body.contains("# TYPE lol_queue_depth gauge"));
    }

    #[test]
    fn label_sets_are_canonicalised() {
        // Order-insensitive: (a, b) and (b, a) are the same series.
        let reg = Registry::new();
        let c1 = reg.counter("m", "h", &[("a", "1"), ("b", "2")]);
        let c2 = reg.counter("m", "h", &[("b", "2"), ("a", "1")]);
        c1.inc();
        c2.inc();
        assert_eq!(c1.get(), 2);
        // Nasty label values survive the render/parse round trip.
        let c3 = reg.counter("m", "h", &[("msg", "a\"b\\c\nd")]);
        c3.inc();
        let samples = parse_exposition(&reg.render()).unwrap();
        assert_eq!(sample_value(&samples, "m", &[("msg", "a\"b\\c\nd")]), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn kind_mismatch_is_a_programming_error() {
        let reg = Registry::new();
        reg.counter("m", "h", &[]);
        reg.gauge("m", "h", &[]);
    }

    #[test]
    fn exposition_parser_rejects_garbage() {
        assert!(parse_exposition("lol_ok 1\n").is_ok());
        assert!(parse_exposition("9bad_name 1\n").is_err());
        assert!(parse_exposition("m{x=\"unterminated} 1\n").is_err());
        assert!(parse_exposition("m{x=\"v\"} not_a_number\n").is_err());
        assert!(parse_exposition("m{x=\"v\"}\n").is_err(), "sample without a value");
        assert!(parse_exposition("# WAT m counter\n").is_err());
        assert!(parse_exposition("# TYPE m flurble\n").is_err());
        assert!(parse_exposition("m{le=\"+Inf\"} +Inf\n").is_ok());
    }
}
