//! Build-and-run driver for the C backend: the part of the paper's
//! `lcc code.lol -o executable.x && coprsh -np 16 ./executable.x`
//! workflow that happens *after* code generation.
//!
//! [`build`] writes the generated C plus the multi-PE
//! [`SHMEM_STUB_H`] runtime into a fresh temp
//! directory and hands them to the system C compiler (probed **once**
//! per process — [`cc`]); the resulting [`CBinary`] can then be
//! [run][CBinary::run] any number of times across PE counts, seeds,
//! inputs, interconnect models and barrier/lock algorithms. Each run
//! talks to the stub over a small env protocol (`LOL_STUB_NPES` /
//! `LOL_STUB_SEED` / `LOL_STUB_OUT` / `LOL_STUB_LATENCY` /
//! `LOL_STUB_BARRIER` / `LOL_STUB_LOCK`) and reads the
//! per-PE outputs and operation counters back from capture files, so a
//! C-backend run reports the same per-PE shape as the in-process
//! engines.
//!
//! Everything here degrades cleanly: no compiler on the machine is
//! [`DriverError::NoCompiler`] (callers surface it as "unsupported",
//! not a failure), and a hung binary is killed at the caller's
//! deadline.

use crate::runtime::SHMEM_STUB_H;
use lol_shmem::{BarrierKind, CommStats, LatencyModel, LockKind};
use lol_trace::{ClockMode, EventKind, PeTrace, TraceEvent};
use std::io::Read as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The stub's hard PE-thread cap (`LOL_STUB_MAX_PES` in
/// [`SHMEM_STUB_H`]); callers should treat wider configs as
/// unsupported rather than spawn a binary that will refuse to start.
pub const MAX_PES: usize = 256;

/// The probed system C compiler.
#[derive(Debug, Clone)]
pub struct CcInfo {
    /// Invocable name or path (`cc`, `gcc`, `clang`, or `$LOL_CC`).
    pub path: String,
    /// First line of `--version` output.
    pub version: String,
}

/// Probe for a working C compiler, once per process. Honors `LOL_CC`,
/// then tries `cc`, `gcc`, `clang`. `None` means the C backend is
/// unsupported on this machine.
pub fn cc() -> Option<&'static CcInfo> {
    static PROBE: OnceLock<Option<CcInfo>> = OnceLock::new();
    PROBE
        .get_or_init(|| {
            let env = std::env::var("LOL_CC").ok();
            let candidates: Vec<&str> =
                env.as_deref().into_iter().chain(["cc", "gcc", "clang"]).collect();
            for cand in candidates {
                if let Ok(out) = Command::new(cand).arg("--version").output() {
                    if out.status.success() {
                        let version = String::from_utf8_lossy(&out.stdout)
                            .lines()
                            .next()
                            .unwrap_or("")
                            .to_string();
                        return Some(CcInfo { path: cand.to_string(), version });
                    }
                }
            }
            None
        })
        .as_ref()
}

/// Anything the build-and-run pipeline can fail with.
#[derive(Debug, Clone)]
pub enum DriverError {
    /// No usable C compiler on this machine (probe failed).
    NoCompiler,
    /// The C compiler rejected the generated translation unit.
    Build(String),
    /// Filesystem / process-spawn trouble.
    Io(String),
    /// The binary outlived the caller's deadline and was killed.
    Timeout(Duration),
    /// The binary exited nonzero (a LOLCODE runtime fault, rendered on
    /// stderr by `lol_die`).
    Program {
        /// Exit code when the process exited normally.
        status: Option<i32>,
        /// Captured stderr (the `O NOES! [RUNxxxx]` message).
        stderr: String,
    },
    /// The binary exited zero but the capture files are missing or
    /// malformed — a stub/driver protocol bug, not a user error.
    Protocol(String),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::NoCompiler => {
                write!(f, "NO C COMPILER ON DIS MACHINE (TRIED $LOL_CC, cc, gcc, clang)")
            }
            DriverError::Build(msg) => write!(f, "DA C COMPILER SEZ NO WAI:\n{msg}"),
            DriverError::Io(msg) => write!(f, "I/O HAZ A SAD: {msg}"),
            DriverError::Timeout(d) => write!(f, "DA BINARY RAN 2 LONG (> {d:?}) AN GOT KILLED"),
            DriverError::Program { status, stderr } => {
                write!(f, "DA BINARY EXITED {:?}: {}", status, stderr.trim())
            }
            DriverError::Protocol(msg) => write!(f, "STUB PROTOCOL HAZ A SAD: {msg}"),
        }
    }
}

impl std::error::Error for DriverError {}

/// One execution request against a built binary.
#[derive(Debug, Clone)]
pub struct RunRequest<'a> {
    /// Number of PE threads the stub spawns.
    pub n_pes: usize,
    /// Seed mixed into every PE's `WHATEVR` stream.
    pub seed: u64,
    /// `GIMMEH` input lines; every PE replays the same stream.
    pub input: &'a [String],
    /// Kill-and-report deadline for the whole SPMD job.
    pub timeout: Duration,
    /// Interconnect latency model the stub charges at its remote-access
    /// choke point (`LOL_STUB_LATENCY`; the model's canonical
    /// `Display` token crosses the process boundary).
    pub latency: LatencyModel,
    /// Barrier algorithm for `shmem_barrier_all` (`LOL_STUB_BARRIER`).
    pub barrier: BarrierKind,
    /// Lock algorithm for the Table II implicit locks (`LOL_STUB_LOCK`).
    pub lock: LockKind,
    /// Which clock the latency model charges (`LOL_STUB_CLOCK`):
    /// busy-waited wall time or the deterministic virtual clock, whose
    /// final per-PE values come back on the stats protocol.
    pub clock: ClockMode,
    /// Record communication events (`LOL_STUB_TRACE`); per-PE trace
    /// files are parsed back into [`CRunOutput::traces`].
    pub trace: bool,
}

impl Default for RunRequest<'_> {
    /// One PE, default seed/knobs, 30s watchdog — the base tests and
    /// sweeps override from.
    fn default() -> Self {
        RunRequest {
            n_pes: 1,
            seed: 0xC47_F00D,
            input: &[],
            timeout: Duration::from_secs(30),
            latency: LatencyModel::Off,
            barrier: BarrierKind::default(),
            lock: LockKind::default(),
            clock: ClockMode::default(),
            trace: false,
        }
    }
}

/// What one run of the binary produced (the C analog of a `RunReport`).
#[derive(Debug, Clone)]
pub struct CRunOutput {
    /// Per-PE `VISIBLE` output, in PE order.
    pub outputs: Vec<String>,
    /// Per-PE operation counts, in PE order. The stub counts scalar
    /// gets/puts (local vs remote), atomics and barriers; counters it
    /// has no instrumentation for stay zero.
    pub stats: Vec<CommStats>,
    /// Wall-clock time from spawn to exit.
    pub wall: Duration,
    /// The job's virtual wall (max final per-PE logical clock), when
    /// the request ran under [`ClockMode::Virtual`].
    pub virtual_ns: Option<u64>,
    /// Per-PE event streams parsed from the stub's trace files, when
    /// the request enabled tracing.
    pub traces: Option<Vec<PeTrace>>,
}

/// A compiled C-backend binary in its own temp directory; the
/// directory (sources, binary, per-run capture files) is removed on
/// drop. Safe to run concurrently — each run gets a private capture
/// prefix.
#[derive(Debug)]
pub struct CBinary {
    dir: PathBuf,
    bin: PathBuf,
    runs: AtomicU64,
}

impl Drop for CBinary {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Compile a generated translation unit against the bundled stub.
pub fn build(c_source: &str) -> Result<CBinary, DriverError> {
    let cc = cc().ok_or(DriverError::NoCompiler)?;
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "lolcc-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let io = |e: std::io::Error| DriverError::Io(e.to_string());
    std::fs::create_dir_all(&dir).map_err(io)?;
    std::fs::write(dir.join("shmem.h"), SHMEM_STUB_H).map_err(io)?;
    let c_path = dir.join("prog.c");
    std::fs::write(&c_path, c_source).map_err(io)?;
    let bin = dir.join("prog");
    // _POSIX_C_SOURCE unhides clock_gettime/nanosleep under -std=c99:
    // the stub's latency models busy-wait on the monotonic clock (and
    // degrade to zero-delay when the host genuinely lacks it).
    let out = Command::new(&cc.path)
        .args(["-std=c99", "-D_POSIX_C_SOURCE=200809L", "-O1", "-pthread", "-I"])
        .arg(&dir)
        .arg(&c_path)
        .arg("-lm")
        .arg("-o")
        .arg(&bin)
        .output()
        .map_err(io)?;
    if !out.status.success() {
        let _ = std::fs::remove_dir_all(&dir);
        return Err(DriverError::Build(String::from_utf8_lossy(&out.stderr).into_owned()));
    }
    Ok(CBinary { dir, bin, runs: AtomicU64::new(0) })
}

impl CBinary {
    /// Path of the compiled executable (inside the temp dir).
    pub fn path(&self) -> &std::path::Path {
        &self.bin
    }

    /// Execute the binary once and collect per-PE outputs and stats.
    pub fn run(&self, req: &RunRequest<'_>) -> Result<CRunOutput, DriverError> {
        let io = |e: std::io::Error| DriverError::Io(e.to_string());
        let run_id = self.runs.fetch_add(1, Ordering::Relaxed);
        let out_dir = self.dir.join(format!("run{run_id}"));
        std::fs::create_dir_all(&out_dir).map_err(io)?;
        let prefix = out_dir.join("out");

        let mut child = Command::new(&self.bin)
            .env("LOL_STUB_NPES", req.n_pes.to_string())
            .env("LOL_STUB_SEED", req.seed.to_string())
            .env("LOL_STUB_OUT", &prefix)
            .env("LOL_STUB_LATENCY", req.latency.to_string())
            .env("LOL_STUB_BARRIER", req.barrier.to_string())
            .env("LOL_STUB_LOCK", req.lock.to_string())
            .env("LOL_STUB_CLOCK", req.clock.to_string())
            .env("LOL_STUB_TRACE", if req.trace { TRACE_CAP } else { "0" })
            .stdin(Stdio::piped())
            .stdout(Stdio::null()) // VISIBLE goes to the capture files
            .stderr(Stdio::piped())
            .spawn()
            .map_err(io)?;
        let t0 = Instant::now();
        {
            // Feed GIMMEH from a detached thread and close stdin so an
            // over-reading program sees EOF instead of blocking. The
            // thread matters: input larger than the OS pipe buffer
            // against a child that deadlocks before reading would
            // otherwise block *this* thread on write_all and keep the
            // timeout watchdog below from ever running. A dead child
            // (broken pipe) just ends the writer; the exit status
            // reports the failure.
            use std::io::Write as _;
            let mut stdin = child.stdin.take().expect("piped stdin");
            let mut text = req.input.join("\n");
            if !text.is_empty() {
                text.push('\n');
            }
            std::thread::spawn(move || {
                let _ = stdin.write_all(text.as_bytes());
            });
        }
        let status = loop {
            match child.try_wait().map_err(io)? {
                Some(status) => break status,
                None if t0.elapsed() > req.timeout => {
                    let _ = child.kill();
                    let _ = child.wait();
                    let _ = std::fs::remove_dir_all(&out_dir);
                    return Err(DriverError::Timeout(req.timeout));
                }
                None => std::thread::sleep(Duration::from_millis(2)),
            }
        };
        let wall = t0.elapsed();
        let mut stderr = String::new();
        if let Some(mut pipe) = child.stderr.take() {
            let _ = pipe.read_to_string(&mut stderr);
        }
        if !status.success() {
            let _ = std::fs::remove_dir_all(&out_dir);
            return Err(DriverError::Program { status: status.code(), stderr });
        }

        let mut outputs = Vec::with_capacity(req.n_pes);
        for pe in 0..req.n_pes {
            let path = out_dir.join(format!("out.pe{pe}.out"));
            outputs.push(
                std::fs::read_to_string(&path).map_err(|e| {
                    DriverError::Protocol(format!("missing capture for PE {pe}: {e}"))
                })?,
            );
        }
        let stats_text = std::fs::read_to_string(out_dir.join("out.stats"))
            .map_err(|e| DriverError::Protocol(format!("missing stats file: {e}")))?;
        let (stats, vclocks) = parse_stats(&stats_text, req.n_pes)?;
        let virtual_ns =
            (req.clock == ClockMode::Virtual).then(|| vclocks.iter().copied().max().unwrap_or(0));
        let traces = if req.trace {
            let mut pes = Vec::with_capacity(req.n_pes);
            for pe in 0..req.n_pes {
                let path = out_dir.join(format!("out.pe{pe}.trace"));
                let text = std::fs::read_to_string(&path).map_err(|e| {
                    DriverError::Protocol(format!("missing trace for PE {pe}: {e}"))
                })?;
                pes.push(parse_trace(&text, pe)?);
            }
            Some(pes)
        } else {
            None
        };
        let _ = std::fs::remove_dir_all(&out_dir);
        Ok(CRunOutput { outputs, stats, wall, virtual_ns, traces })
    }
}

/// Per-PE event cap the driver asks the stub for (`LOL_STUB_TRACE`);
/// matches the Rust substrate's default `trace_capacity`.
const TRACE_CAP: &str = "65536";

/// Parse one stub trace file: `<code> <peer> <addr> <bytes> <t_ns>`
/// event lines in issue order, then a `= <dropped> <end_ns>` trailer.
fn parse_trace(text: &str, pe: usize) -> Result<PeTrace, DriverError> {
    let bad = |line: &str| DriverError::Protocol(format!("bad trace line {line:?}"));
    let mut out = PeTrace::default();
    let mut sealed = false;
    for line in text.lines() {
        let fields: Vec<&str> = line.split_whitespace().collect();
        if sealed {
            return Err(DriverError::Protocol("trace data after trailer".to_string()));
        }
        match fields.as_slice() {
            ["=", dropped, end] => {
                out.dropped = dropped.parse().map_err(|_| bad(line))?;
                out.end_ns = end.parse().map_err(|_| bad(line))?;
                sealed = true;
            }
            [code, peer, addr, bytes, t_ns] => {
                let mut chars = code.chars();
                let (Some(c), None) = (chars.next(), chars.next()) else {
                    return Err(bad(line));
                };
                let kind = EventKind::from_code(c).ok_or_else(|| bad(line))?;
                out.events.push(TraceEvent {
                    kind,
                    pe: pe as u32,
                    peer: peer.parse().map_err(|_| bad(line))?,
                    addr: addr.parse().map_err(|_| bad(line))?,
                    bytes: bytes.parse().map_err(|_| bad(line))?,
                    seq: out.events.len() as u32,
                    t_ns: t_ns.parse().map_err(|_| bad(line))?,
                });
            }
            _ => return Err(bad(line)),
        }
    }
    if !sealed {
        return Err(DriverError::Protocol(format!("trace for PE {pe} has no trailer")));
    }
    Ok(out)
}

/// Parse the stub's stats file: one line per PE,
/// `pe local_gets remote_gets local_puts remote_puts amos barriers
/// [vclock_ns]` — the optional 8th column is the PE's final virtual
/// clock (0 under the wall clock; absent in legacy 7-column files).
fn parse_stats(text: &str, n_pes: usize) -> Result<(Vec<CommStats>, Vec<u64>), DriverError> {
    let mut out = vec![CommStats::default(); n_pes];
    let mut vclocks = vec![0u64; n_pes];
    let mut filled = vec![false; n_pes];
    for line in text.lines() {
        let fields: Vec<u64> = line
            .split_whitespace()
            .map(|f| f.parse::<u64>())
            .collect::<Result<_, _>>()
            .map_err(|e| DriverError::Protocol(format!("bad stats line {line:?}: {e}")))?;
        let (pe, local_gets, remote_gets, local_puts, remote_puts, amos, barriers, vclock) =
            match *fields.as_slice() {
                [a, b, c, d, e, f, g] => (a, b, c, d, e, f, g, 0),
                [a, b, c, d, e, f, g, v] => (a, b, c, d, e, f, g, v),
                _ => return Err(DriverError::Protocol(format!("bad stats line {line:?}"))),
            };
        let slot = out
            .get_mut(pe as usize)
            .ok_or_else(|| DriverError::Protocol(format!("stats for unknown PE {pe}")))?;
        if std::mem::replace(&mut filled[pe as usize], true) {
            return Err(DriverError::Protocol(format!("duplicate stats row for PE {pe}")));
        }
        *slot = CommStats {
            local_gets,
            remote_gets,
            local_puts,
            remote_puts,
            amos,
            barriers,
            ..CommStats::default()
        };
        vclocks[pe as usize] = vclock;
    }
    if let Some(pe) = filled.iter().position(|&f| !f) {
        return Err(DriverError::Protocol(format!("stats file has no row for PE {pe}")));
    }
    Ok((out, vclocks))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_stats_round_trip() {
        // Legacy 7-column rows parse with a zero virtual clock.
        let text = "0 1 2 3 4 5 6\n1 10 20 30 40 50 60\n";
        let (stats, vclocks) = parse_stats(text, 2).unwrap();
        assert_eq!(stats[0].local_gets, 1);
        assert_eq!(stats[0].barriers, 6);
        assert_eq!(stats[1].remote_puts, 40);
        assert_eq!(stats[1].amos, 50);
        assert_eq!(vclocks, vec![0, 0]);
        // 8-column rows carry the per-PE final virtual clock.
        let (_, vclocks) = parse_stats("0 1 2 3 4 5 6 777\n1 1 2 3 4 5 6 999\n", 2).unwrap();
        assert_eq!(vclocks, vec![777, 999]);
    }

    #[test]
    fn parse_stats_rejects_short_files_and_junk() {
        assert!(matches!(parse_stats("0 1 2 3 4 5 6\n", 2), Err(DriverError::Protocol(_))));
        assert!(matches!(parse_stats("0 1 2\n", 1), Err(DriverError::Protocol(_))));
        assert!(matches!(parse_stats("zero 1 2 3 4 5 6\n", 1), Err(DriverError::Protocol(_))));
        assert!(matches!(parse_stats("7 1 2 3 4 5 6\n", 1), Err(DriverError::Protocol(_))));
        // A duplicated PE row must not masquerade as full coverage.
        assert!(matches!(
            parse_stats("0 1 2 3 4 5 6\n0 9 9 9 9 9 9\n", 2),
            Err(DriverError::Protocol(_))
        ));
    }

    #[test]
    fn parse_trace_round_trip_and_rejects_junk() {
        let text = "P 1 3 8 150\nB 0 0 0 150\nb 0 0 0 300\n= 2 321\n";
        let pt = parse_trace(text, 0).unwrap();
        assert_eq!(pt.events.len(), 3);
        assert_eq!(pt.events[0].kind, EventKind::Put);
        assert_eq!(pt.events[0].peer, 1);
        assert_eq!(pt.events[0].addr, 3);
        assert_eq!(pt.events[0].bytes, 8);
        assert_eq!(pt.events[0].t_ns, 150);
        assert_eq!((pt.events[1].seq, pt.events[2].seq), (1, 2));
        assert_eq!(pt.dropped, 2);
        assert_eq!(pt.end_ns, 321);
        for junk in [
            "P 1 3 8\n= 0 0\n",     // short event line
            "? 1 3 8 150\n= 0 0\n", // unknown code
            "P 1 3 8 150\n",        // missing trailer
            "= 0 0\nP 1 3 8 150\n", // data after trailer
        ] {
            assert!(matches!(parse_trace(junk, 0), Err(DriverError::Protocol(_))), "{junk:?}");
        }
    }

    #[test]
    fn probe_is_cached_and_consistent() {
        // Two calls must agree (OnceLock) whatever the machine has.
        let a = cc().map(|c| c.path.clone());
        let b = cc().map(|c| c.path.clone());
        assert_eq!(a, b);
    }

    #[test]
    fn errors_render_lolcode_style() {
        assert!(DriverError::NoCompiler.to_string().contains("NO C COMPILER"));
        assert!(DriverError::Timeout(Duration::from_secs(3)).to_string().contains("KILLED"));
    }
}
