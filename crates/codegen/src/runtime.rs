//! The C runtime preamble emitted at the top of every generated file,
//! and the single-PE OpenSHMEM stub used by the compile-and-run tests.

/// C99 runtime for dynamic LOLCODE values, emitted verbatim into every
/// generated translation unit (the paper's `lcc` similarly pairs its
/// output with a small support layer before handing off to `cc`).
pub const LOL_RUNTIME: &str = r#"/* ---- parallel LOLCODE runtime (generated, do not edit) ---- */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>
#include <shmem.h>

typedef enum { LOL_NOOB, LOL_TROOF, LOL_NUMBR, LOL_NUMBAR, LOL_YARN } lol_type_t;
typedef struct {
    lol_type_t t;
    long long i;
    double f;
    char s[256];
} lol_value_t;

static void lol_die(const char *code, const char *msg) {
    fprintf(stderr, "O NOES! [%s] %s\n", code, msg);
    exit(1);
}

static lol_value_t lol_noob(void) { lol_value_t v; memset(&v, 0, sizeof v); v.t = LOL_NOOB; return v; }
static lol_value_t lol_from_int(long long i) { lol_value_t v = lol_noob(); v.t = LOL_NUMBR; v.i = i; return v; }
static lol_value_t lol_from_dbl(double f) { lol_value_t v = lol_noob(); v.t = LOL_NUMBAR; v.f = f; return v; }
static lol_value_t lol_from_bool(int b) { lol_value_t v = lol_noob(); v.t = LOL_TROOF; v.i = b ? 1 : 0; return v; }
static lol_value_t lol_from_str(const char *s) {
    lol_value_t v = lol_noob();
    v.t = LOL_YARN;
    snprintf(v.s, sizeof v.s, "%s", s);
    return v;
}

static int lol_to_bool(lol_value_t v) {
    switch (v.t) {
    case LOL_NOOB: return 0;
    case LOL_TROOF: return v.i != 0;
    case LOL_NUMBR: return v.i != 0;
    case LOL_NUMBAR: return v.f != 0.0;
    case LOL_YARN: return v.s[0] != '\0';
    }
    return 0;
}

/* numeric coercion: 0 = int (out_i), 1 = float (out_f) */
static int lol_numeric(lol_value_t v, long long *out_i, double *out_f) {
    switch (v.t) {
    case LOL_NOOB: lol_die("RUN0002", "CANT DO MATHS WIF NOOB");
    case LOL_TROOF: *out_i = v.i; return 0;
    case LOL_NUMBR: *out_i = v.i; return 0;
    case LOL_NUMBAR: *out_f = v.f; return 1;
    case LOL_YARN:
        if (strchr(v.s, '.') || strchr(v.s, 'e') || strchr(v.s, 'E')) {
            *out_f = atof(v.s);
            return 1;
        }
        *out_i = atoll(v.s);
        return 0;
    }
    return 0;
}

static long long lol_to_int(lol_value_t v) {
    long long i = 0; double f = 0.0;
    if (lol_numeric(v, &i, &f)) return (long long)f;
    return i;
}

static double lol_to_dbl(lol_value_t v) {
    long long i = 0; double f = 0.0;
    if (lol_numeric(v, &i, &f)) return f;
    return (double)i;
}

static void lol_to_str(lol_value_t v, char *buf, size_t n) {
    switch (v.t) {
    case LOL_NOOB: lol_die("RUN0003", "CANT MAKE A YARN OUT OF NOOB");
    case LOL_TROOF: snprintf(buf, n, "%s", v.i ? "WIN" : "FAIL"); return;
    case LOL_NUMBR: snprintf(buf, n, "%lld", v.i); return;
    case LOL_NUMBAR: snprintf(buf, n, "%.2f", v.f); return;
    case LOL_YARN: snprintf(buf, n, "%s", v.s); return;
    }
}

#define LOL_ARITH(NAME, IOP, FOP, ZCHK)                                        \
    static lol_value_t NAME(lol_value_t a, lol_value_t b) {                    \
        long long ia = 0, ib = 0; double fa = 0.0, fb = 0.0;                   \
        int af = lol_numeric(a, &ia, &fa), bf = lol_numeric(b, &ib, &fb);      \
        if (!af && !bf) {                                                      \
            if (ZCHK && ib == 0) lol_die("RUN0001", "DIVIDIN BY ZERO IZ NOT ALLOWED"); \
            return lol_from_int(IOP);                                          \
        }                                                                      \
        fa = af ? fa : (double)ia;                                             \
        fb = bf ? fb : (double)ib;                                             \
        return lol_from_dbl(FOP);                                              \
    }

LOL_ARITH(lol_sum, ia + ib, fa + fb, 0)
LOL_ARITH(lol_diff, ia - ib, fa - fb, 0)
LOL_ARITH(lol_produkt, ia * ib, fa * fb, 0)
LOL_ARITH(lol_quoshunt, ia / ib, fa / fb, 1)
LOL_ARITH(lol_mod, ia % ib, fmod(fa, fb), 1)
LOL_ARITH(lol_biggr, ia > ib ? ia : ib, fa > fb ? fa : fb, 0)
LOL_ARITH(lol_smallr, ia < ib ? ia : ib, fa < fb ? fa : fb, 0)

static lol_value_t lol_bigger(lol_value_t a, lol_value_t b) {
    return lol_from_bool(lol_to_dbl(a) > lol_to_dbl(b));
}
static lol_value_t lol_smallr_than(lol_value_t a, lol_value_t b) {
    return lol_from_bool(lol_to_dbl(a) < lol_to_dbl(b));
}

static int lol_saem(lol_value_t a, lol_value_t b) {
    if (a.t == LOL_NOOB && b.t == LOL_NOOB) return 1;
    if (a.t == LOL_TROOF && b.t == LOL_TROOF) return a.i == b.i;
    if (a.t == LOL_NUMBR && b.t == LOL_NUMBR) return a.i == b.i;
    if (a.t == LOL_YARN && b.t == LOL_YARN) return strcmp(a.s, b.s) == 0;
    if ((a.t == LOL_NUMBR || a.t == LOL_NUMBAR) && (b.t == LOL_NUMBR || b.t == LOL_NUMBAR))
        return lol_to_dbl(a) == lol_to_dbl(b);
    return 0;
}

static lol_value_t lol_not(lol_value_t v) { return lol_from_bool(!lol_to_bool(v)); }
static lol_value_t lol_squar(lol_value_t v) { return lol_produkt(v, v); }
static lol_value_t lol_unsquar(lol_value_t v) { return lol_from_dbl(sqrt(lol_to_dbl(v))); }
static lol_value_t lol_flip(lol_value_t v) { return lol_from_dbl(1.0 / lol_to_dbl(v)); }

static lol_value_t lol_smoosh(lol_value_t a, lol_value_t b) {
    char ba[256], bb[256];
    lol_to_str(a, ba, sizeof ba);
    lol_to_str(b, bb, sizeof bb);
    lol_value_t v = lol_noob();
    v.t = LOL_YARN;
    snprintf(v.s, sizeof v.s, "%s%s", ba, bb);
    return v;
}

static lol_value_t lol_cast(lol_value_t v, lol_type_t ty) {
    switch (ty) {
    case LOL_NOOB: return lol_noob();
    case LOL_TROOF: return lol_from_bool(lol_to_bool(v));
    case LOL_NUMBR: return lol_from_int(lol_to_int(v));
    case LOL_NUMBAR: return lol_from_dbl(lol_to_dbl(v));
    case LOL_YARN: {
        char b[256];
        lol_to_str(v, b, sizeof b);
        return lol_from_str(b);
    }
    }
    return lol_noob();
}

static void lol_print(lol_value_t v) {
    char b[256];
    lol_to_str(v, b, sizeof b);
    fputs(b, stdout);
}

static lol_value_t lol_gimmeh(void) {
    char b[256];
    if (!fgets(b, sizeof b, stdin)) lol_die("RUN0140", "GIMMEH BUT THERES NO MOAR INPUT");
    b[strcspn(b, "\r\n")] = '\0';
    return lol_from_str(b);
}

static long long lol_idx(long long i, long long len) {
    if (i < 0 || i >= len) lol_die("RUN0123", "INDEX IZ OUTSIDE DA ARRAY");
    return i;
}

/* local dynamically-sized arrays */
typedef struct {
    lol_value_t *e;
    long long n;
    lol_type_t ty;
} lol_arr_t;

static lol_arr_t lol_arr_new(long long n, lol_type_t ty) {
    if (n <= 0) lol_die("RUN0014", "ARRAY SIZE MUST BE POSITIVE");
    lol_arr_t a;
    a.e = (lol_value_t *)calloc((size_t)n, sizeof(lol_value_t));
    a.n = n;
    a.ty = ty;
    for (long long i = 0; i < n; i++) a.e[i] = lol_cast(lol_from_int(0), ty);
    return a;
}
static lol_value_t lol_arr_get(lol_arr_t *a, long long i) { return a->e[lol_idx(i, a->n)]; }
static void lol_arr_set(lol_arr_t *a, long long i, lol_value_t v) {
    a->e[lol_idx(i, a->n)] = lol_cast(v, a->ty);
}

/* per-instance global locks over OpenSHMEM atomics (Table II locks) */
static void lol_lock_acquire(long *cell, int target) {
    long me1 = (long)shmem_my_pe() + 1;
    while (shmem_long_atomic_compare_swap(cell, 0, me1, target) != 0) {}
}
static int lol_lock_try(long *cell, int target) {
    long me1 = (long)shmem_my_pe() + 1;
    return shmem_long_atomic_compare_swap(cell, 0, me1, target) == 0;
}
static void lol_lock_release(long *cell, int target) {
    shmem_long_atomic_swap(cell, 0, target);
}

static lol_value_t lol_whatevr(void) { return lol_from_int(rand()); }
static lol_value_t lol_whatevar(void) { return lol_from_dbl((double)rand() / ((double)RAND_MAX + 1.0)); }
/* ---- end runtime ---- */
"#;

/// A single-PE OpenSHMEM stub, good enough to compile and run the
/// generated C with any C99 compiler when no real OpenSHMEM library is
/// installed (`lcc --stub`; also used by this crate's tests). This is
/// the "simulate what you don't have" substitution from DESIGN.md §2.
pub const SHMEM_STUB_H: &str = r#"/* single-PE OpenSHMEM stub (np=1) for toolchains without SHMEM */
#ifndef LOL_SHMEM_STUB_H
#define LOL_SHMEM_STUB_H
static void shmem_init(void) {}
static void shmem_finalize(void) {}
static int shmem_my_pe(void) { return 0; }
static int shmem_n_pes(void) { return 1; }
static void shmem_barrier_all(void) {}
static long long shmem_longlong_g(const long long *src, int pe) { (void)pe; return *src; }
static void shmem_longlong_p(long long *dst, long long v, int pe) { (void)pe; *dst = v; }
static double shmem_double_g(const double *src, int pe) { (void)pe; return *src; }
static void shmem_double_p(double *dst, double v, int pe) { (void)pe; *dst = v; }
static long shmem_long_atomic_compare_swap(long *target, long cond, long value, int pe) {
    (void)pe;
    long old = *target;
    if (old == cond) *target = value;
    return old;
}
static long shmem_long_atomic_swap(long *target, long value, int pe) {
    (void)pe;
    long old = *target;
    *target = value;
    return old;
}
#endif
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_has_the_key_pieces() {
        for needle in [
            "lol_value_t",
            "lol_sum",
            "lol_quoshunt",
            "lol_saem",
            "lol_lock_acquire",
            "shmem_long_atomic_compare_swap",
            "%.2f", // NUMBAR printing matches the interpreter
            "lol_arr_new",
        ] {
            assert!(LOL_RUNTIME.contains(needle), "runtime lacks {needle}");
        }
    }

    #[test]
    fn stub_covers_the_runtime_calls() {
        // Every shmem_* symbol the runtime/emitter uses must exist in
        // the stub.
        for needle in [
            "shmem_init",
            "shmem_finalize",
            "shmem_my_pe",
            "shmem_n_pes",
            "shmem_barrier_all",
            "shmem_longlong_g",
            "shmem_longlong_p",
            "shmem_double_g",
            "shmem_double_p",
            "shmem_long_atomic_compare_swap",
            "shmem_long_atomic_swap",
        ] {
            assert!(SHMEM_STUB_H.contains(needle), "stub lacks {needle}");
        }
    }

    #[test]
    fn braces_balance() {
        for (name, text) in [("runtime", LOL_RUNTIME), ("stub", SHMEM_STUB_H)] {
            let open = text.matches('{').count();
            let close = text.matches('}').count();
            assert_eq!(open, close, "{name} braces unbalanced");
        }
    }
}
