//! The C runtime preamble emitted at the top of every generated file,
//! and the multi-PE OpenSHMEM stub used by the compile-and-run path.

/// C99 runtime for dynamic LOLCODE values, emitted verbatim into every
/// generated translation unit (the paper's `lcc` similarly pairs its
/// output with a small support layer before handing off to `cc`).
pub const LOL_RUNTIME: &str = r#"/* ---- parallel LOLCODE runtime (generated, do not edit) ---- */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>
#include <shmem.h>

/* Backend hooks. A stub shmem.h (see lcc --stub) may define these
   before this point to intercept symmetric storage, I/O and RNG; a
   build against a real OpenSHMEM library leaves them unset and gets
   the pass-through defaults. */
#ifndef LOL_SYMMETRIC
#define LOL_SYMMETRIC
#endif
#ifndef LOL_SYM_REG
#define LOL_SYM_REG(p, n) ((void)0)
#define LOL_SYM_REG_DONE() ((void)0)
#endif
#ifndef LOL_MAIN_DRIVER
#define LOL_MAIN_DRIVER(fn) fn()
#endif
#ifndef LOL_PUTS
#define LOL_PUTS(s) fputs((s), stdout)
#endif
#ifndef LOL_GETS
#define LOL_GETS(buf, n) fgets((buf), (n), stdin)
#endif
#ifndef LOL_SRAND
#define LOL_SRAND(seed) srand(seed)
#define LOL_RAND() rand()
#endif
#ifndef LOL_LOCK_KIND
#define LOL_LOCK_KIND 0 /* 0 = CAS spin lock, 1 = FIFO ticket lock */
#endif
#ifndef LOL_LOCK_RELAX
#define LOL_LOCK_RELAX() ((void)0) /* back off inside lock spin loops */
#endif
#ifndef LOL_LOCK_TRACE
/* lock-event trace hook: kind char ('L'/'T'/'U'), lock cell, target PE,
   result byte. The stub wires it to its event recorder. */
#define LOL_LOCK_TRACE(k, cell, pe, b) ((void)0)
#endif
#ifndef LOL_LOCK_ENTER
/* lock-op cost hooks: the stub's virtual clock charges each lock
   operation exactly once (like the Rust substrate's Pe::lock) and
   suppresses the per-AMO charge inside the op — spin retries must not
   advance deterministic time. */
#define LOL_LOCK_ENTER(pe) ((void)0)
#define LOL_LOCK_EXIT() ((void)0)
#endif

typedef enum { LOL_NOOB, LOL_TROOF, LOL_NUMBR, LOL_NUMBAR, LOL_YARN } lol_type_t;
/* YARNs are heap-allocated, so strings have no length cap. Values are
   copied freely and the program is one short-lived process, so yarn
   storage is deliberately never freed (arena-by-leak, like many
   short-lived compilers). */
typedef struct {
    lol_type_t t;
    long long i;
    double f;
    char *s;
} lol_value_t;

/* scratch big enough for any numeric rendering (%.2f of 1e308) */
#define LOL_NUM_BUF 400

static void lol_die(const char *code, const char *msg) {
    fprintf(stderr, "O NOES! [%s] %s\n", code, msg);
    exit(1);
}

static char *lol_strdup(const char *s) {
    size_t n = strlen(s) + 1;
    char *p = (char *)malloc(n);
    if (!p) lol_die("RUN0150", "OUT OF MEMOREZ FOR A YARN");
    memcpy(p, s, n);
    return p;
}

static lol_value_t lol_noob(void) { lol_value_t v; memset(&v, 0, sizeof v); v.t = LOL_NOOB; return v; }
static lol_value_t lol_from_int(long long i) { lol_value_t v = lol_noob(); v.t = LOL_NUMBR; v.i = i; return v; }
static lol_value_t lol_from_dbl(double f) { lol_value_t v = lol_noob(); v.t = LOL_NUMBAR; v.f = f; return v; }
static lol_value_t lol_from_bool(int b) { lol_value_t v = lol_noob(); v.t = LOL_TROOF; v.i = b ? 1 : 0; return v; }
static lol_value_t lol_from_str(const char *s) {
    lol_value_t v = lol_noob();
    v.t = LOL_YARN;
    v.s = lol_strdup(s);
    return v;
}

static int lol_to_bool(lol_value_t v) {
    switch (v.t) {
    case LOL_NOOB: return 0;
    case LOL_TROOF: return v.i != 0;
    case LOL_NUMBR: return v.i != 0;
    case LOL_NUMBAR: return v.f != 0.0;
    case LOL_YARN: return v.s && v.s[0] != '\0';
    }
    return 0;
}

/* numeric coercion: 0 = int (out_i), 1 = float (out_f) */
static int lol_numeric(lol_value_t v, long long *out_i, double *out_f) {
    switch (v.t) {
    case LOL_NOOB: lol_die("RUN0002", "CANT DO MATHS WIF NOOB");
    case LOL_TROOF: *out_i = v.i; return 0;
    case LOL_NUMBR: *out_i = v.i; return 0;
    case LOL_NUMBAR: *out_f = v.f; return 1;
    case LOL_YARN:
        if (strchr(v.s, '.') || strchr(v.s, 'e') || strchr(v.s, 'E')) {
            *out_f = atof(v.s);
            return 1;
        }
        *out_i = atoll(v.s);
        return 0;
    }
    return 0;
}

static long long lol_to_int(lol_value_t v) {
    long long i = 0; double f = 0.0;
    if (lol_numeric(v, &i, &f)) return (long long)f;
    return i;
}

static double lol_to_dbl(lol_value_t v) {
    long long i = 0; double f = 0.0;
    if (lol_numeric(v, &i, &f)) return f;
    return (double)i;
}

/* Render `v` as a C string: YARNs return their heap storage directly
   (no length cap), everything else renders into the caller's scratch
   buffer (LOL_NUM_BUF bytes is always enough for numerics). */
static const char *lol_to_cstr(lol_value_t v, char *buf, size_t n) {
    switch (v.t) {
    case LOL_NOOB: lol_die("RUN0003", "CANT MAKE A YARN OUT OF NOOB");
    case LOL_TROOF: snprintf(buf, n, "%s", v.i ? "WIN" : "FAIL"); return buf;
    case LOL_NUMBR: snprintf(buf, n, "%lld", v.i); return buf;
    case LOL_NUMBAR:
        /* Non-finite spellings are pinned across backends: lowercase,
           and NaN renders unsigned (glibc would print "-nan" for a
           sign-bit NaN; the Rust engines can't see that sign portably). */
        if (isnan(v.f)) snprintf(buf, n, "nan");
        else if (isinf(v.f)) snprintf(buf, n, v.f > 0 ? "inf" : "-inf");
        else snprintf(buf, n, "%.2f", v.f);
        return buf;
    case LOL_YARN: return v.s ? v.s : "";
    }
    return "";
}

#define LOL_ARITH(NAME, IOP, FOP, ZCHK)                                        \
    static lol_value_t NAME(lol_value_t a, lol_value_t b) {                    \
        long long ia = 0, ib = 0; double fa = 0.0, fb = 0.0;                   \
        int af = lol_numeric(a, &ia, &fa), bf = lol_numeric(b, &ib, &fb);      \
        if (!af && !bf) {                                                      \
            if (ZCHK && ib == 0) lol_die("RUN0001", "DIVIDIN BY ZERO IZ NOT ALLOWED"); \
            return lol_from_int(IOP);                                          \
        }                                                                      \
        fa = af ? fa : (double)ia;                                             \
        fb = bf ? fb : (double)ib;                                             \
        return lol_from_dbl(FOP);                                              \
    }

LOL_ARITH(lol_sum, ia + ib, fa + fb, 0)
LOL_ARITH(lol_diff, ia - ib, fa - fb, 0)
LOL_ARITH(lol_produkt, ia * ib, fa * fb, 0)
LOL_ARITH(lol_quoshunt, ia / ib, fa / fb, 1)
LOL_ARITH(lol_mod, ia % ib, fmod(fa, fb), 1)
LOL_ARITH(lol_biggr, ia > ib ? ia : ib, fa > fb ? fa : fb, 0)
LOL_ARITH(lol_smallr, ia < ib ? ia : ib, fa < fb ? fa : fb, 0)

static lol_value_t lol_bigger(lol_value_t a, lol_value_t b) {
    return lol_from_bool(lol_to_dbl(a) > lol_to_dbl(b));
}
static lol_value_t lol_smallr_than(lol_value_t a, lol_value_t b) {
    return lol_from_bool(lol_to_dbl(a) < lol_to_dbl(b));
}

static int lol_saem(lol_value_t a, lol_value_t b) {
    if (a.t == LOL_NOOB && b.t == LOL_NOOB) return 1;
    if (a.t == LOL_TROOF && b.t == LOL_TROOF) return a.i == b.i;
    if (a.t == LOL_NUMBR && b.t == LOL_NUMBR) return a.i == b.i;
    if (a.t == LOL_YARN && b.t == LOL_YARN) return strcmp(a.s, b.s) == 0;
    if ((a.t == LOL_NUMBR || a.t == LOL_NUMBAR) && (b.t == LOL_NUMBR || b.t == LOL_NUMBAR))
        return lol_to_dbl(a) == lol_to_dbl(b);
    return 0;
}

static lol_value_t lol_not(lol_value_t v) { return lol_from_bool(!lol_to_bool(v)); }
static lol_value_t lol_squar(lol_value_t v) { return lol_produkt(v, v); }
static lol_value_t lol_unsquar(lol_value_t v) { return lol_from_dbl(sqrt(lol_to_dbl(v))); }
static lol_value_t lol_flip(lol_value_t v) { return lol_from_dbl(1.0 / lol_to_dbl(v)); }

static lol_value_t lol_smoosh(lol_value_t a, lol_value_t b) {
    char ba[LOL_NUM_BUF], bb[LOL_NUM_BUF];
    const char *sa = lol_to_cstr(a, ba, sizeof ba);
    const char *sb = lol_to_cstr(b, bb, sizeof bb);
    size_t na = strlen(sa), nb = strlen(sb);
    lol_value_t v = lol_noob();
    v.t = LOL_YARN;
    v.s = (char *)malloc(na + nb + 1);
    if (!v.s) lol_die("RUN0150", "OUT OF MEMOREZ FOR A YARN");
    memcpy(v.s, sa, na);
    memcpy(v.s + na, sb, nb + 1);
    return v;
}

static lol_value_t lol_cast(lol_value_t v, lol_type_t ty) {
    switch (ty) {
    case LOL_NOOB: return lol_noob();
    case LOL_TROOF: return lol_from_bool(lol_to_bool(v));
    case LOL_NUMBR: return lol_from_int(lol_to_int(v));
    case LOL_NUMBAR: return lol_from_dbl(lol_to_dbl(v));
    case LOL_YARN: {
        char b[LOL_NUM_BUF];
        return lol_from_str(lol_to_cstr(v, b, sizeof b));
    }
    }
    return lol_noob();
}

static void lol_print(lol_value_t v) {
    char b[LOL_NUM_BUF];
    LOL_PUTS(lol_to_cstr(v, b, sizeof b));
}

/* Read one whole input line of any length (heap-grown; the 256-byte
   line cap is gone along with the YARN cap). */
static lol_value_t lol_gimmeh(void) {
    size_t cap = 64, len = 0, n;
    char chunk[256];
    int got = 0;
    char *buf = (char *)malloc(cap);
    lol_value_t v;
    if (!buf) lol_die("RUN0150", "OUT OF MEMOREZ FOR A YARN");
    buf[0] = '\0';
    for (;;) {
        if (!LOL_GETS(chunk, sizeof chunk)) break;
        got = 1;
        n = strlen(chunk);
        while (len + n + 1 > cap) {
            cap *= 2;
            buf = (char *)realloc(buf, cap);
            if (!buf) lol_die("RUN0150", "OUT OF MEMOREZ FOR A YARN");
        }
        memcpy(buf + len, chunk, n + 1);
        len += n;
        if (n > 0 && chunk[n - 1] == '\n') break; /* full line read */
        if (n + 1 < sizeof chunk) break; /* short read, no newline: EOF */
    }
    if (!got) lol_die("RUN0140", "GIMMEH BUT THERES NO MOAR INPUT");
    buf[strcspn(buf, "\r\n")] = '\0';
    v = lol_noob();
    v.t = LOL_YARN;
    v.s = buf;
    return v;
}

static long long lol_idx(long long i, long long len) {
    if (i < 0 || i >= len) lol_die("RUN0123", "INDEX IZ OUTSIDE DA ARRAY");
    return i;
}

/* local dynamically-sized arrays */
typedef struct {
    lol_value_t *e;
    long long n;
    lol_type_t ty;
} lol_arr_t;

static lol_arr_t lol_arr_new(long long n, lol_type_t ty) {
    if (n <= 0) lol_die("RUN0014", "ARRAY SIZE MUST BE POSITIVE");
    lol_arr_t a;
    a.e = (lol_value_t *)calloc((size_t)n, sizeof(lol_value_t));
    a.n = n;
    a.ty = ty;
    for (long long i = 0; i < n; i++) a.e[i] = lol_cast(lol_from_int(0), ty);
    return a;
}
static lol_value_t lol_arr_get(lol_arr_t *a, long long i) { return a->e[lol_idx(i, a->n)]; }
static void lol_arr_set(lol_arr_t *a, long long i, lol_value_t v) {
    a->e[lol_idx(i, a->n)] = lol_cast(v, a->ty);
}

/* per-instance global locks over OpenSHMEM atomics (Table II locks).
   Each lock is three symmetric longs — [owner, next_ticket, now_serving]
   — mirroring the Rust substrate's LOCK_WORDS layout. The CAS algorithm
   uses only cell[0]; the ticket algorithm queues on cell[1]/cell[2].
   LOL_LOCK_KIND selects the algorithm (the stub wires it to the
   LOL_STUB_LOCK env var; real-OpenSHMEM builds can -DLOL_LOCK_KIND=1). */
static void lol_lock_acquire(long *cell, int target) {
    long me1 = (long)shmem_my_pe() + 1;
    LOL_LOCK_ENTER(target);
    if (LOL_LOCK_KIND == 1) {
        long t = shmem_long_atomic_fetch_inc(&cell[1], target);
        while (shmem_long_atomic_fetch(&cell[2], target) != t) LOL_LOCK_RELAX();
        shmem_long_atomic_swap(&cell[0], me1, target);
    } else {
        while (shmem_long_atomic_compare_swap(&cell[0], 0, me1, target) != 0) LOL_LOCK_RELAX();
    }
    LOL_LOCK_EXIT();
    LOL_LOCK_TRACE('L', cell, target, 0);
}
static int lol_lock_try(long *cell, int target) {
    long me1 = (long)shmem_my_pe() + 1;
    int got;
    LOL_LOCK_ENTER(target);
    if (LOL_LOCK_KIND == 1) {
        /* queue empty iff next == serving: claim ticket t only if it is
           already being served (no waiting, like the Rust try_acquire) */
        long t = shmem_long_atomic_fetch(&cell[2], target);
        got = shmem_long_atomic_compare_swap(&cell[1], t, t + 1, target) == t;
        if (got) shmem_long_atomic_swap(&cell[0], me1, target);
    } else {
        got = shmem_long_atomic_compare_swap(&cell[0], 0, me1, target) == 0;
    }
    LOL_LOCK_EXIT();
    LOL_LOCK_TRACE('T', cell, target, (unsigned)got);
    return got;
}
static void lol_lock_release(long *cell, int target) {
    LOL_LOCK_ENTER(target);
    shmem_long_atomic_swap(&cell[0], 0, target);
    if (LOL_LOCK_KIND == 1) shmem_long_atomic_fetch_inc(&cell[2], target);
    LOL_LOCK_EXIT();
    LOL_LOCK_TRACE('U', cell, target, 0);
}

static lol_value_t lol_whatevr(void) { return lol_from_int(LOL_RAND()); }
static lol_value_t lol_whatevar(void) { return lol_from_dbl((double)LOL_RAND() / ((double)RAND_MAX + 1.0)); }
/* ---- end runtime ---- */
"#;

/// A multi-PE OpenSHMEM stub over POSIX threads, good enough to compile
/// and *run* the generated C with any C99 compiler when no real
/// OpenSHMEM library is installed (`lcc --stub`; also the substrate the
/// [`driver`][crate::driver] uses to run the C backend as an engine).
/// This is the "simulate what you don't have" substitution from
/// DESIGN.md §2, upgraded from the original single-PE stub:
///
/// * every `WE HAS A` object is thread-local (`LOL_SYMMETRIC`), so each
///   PE thread owns its copy of the symmetric segment;
/// * each thread registers its copies in program order
///   (`LOL_SYM_REG`), and remote `shmem_*_g`/`_p`/atomics translate an
///   address through the (index, offset) pair into the target PE's
///   copy;
/// * the PE count, RNG seed and per-PE output capture come from the
///   `LOL_STUB_NPES` / `LOL_STUB_SEED` / `LOL_STUB_OUT` environment
///   variables. Without them the binary behaves like the old stub: one
///   PE, stdout, streaming stdin;
/// * the interconnect latency model, barrier algorithm and lock
///   algorithm come from `LOL_STUB_LATENCY` (`off` / `flat:NS` /
///   `mesh:W:BASE:HOP` / `torus:WxH:BASE:HOP` — the same tokens the
///   Rust substrate's `LatencyModel` round-trips), `LOL_STUB_BARRIER`
///   (`central` / `dissem`) and `LOL_STUB_LOCK` (`cas` / `ticket`).
///   The latency charge sits in `lol_stub_xlate`, the single remote-
///   access choke point, so every remote get/put/atomic pays the
///   modelled delay exactly once. Wall-mode busy-waits subtract the
///   measured `clock_gettime` overhead (calibrated at startup) so the
///   injected delays stay accurate on fast hosts;
/// * `LOL_STUB_CLOCK=virtual` switches the latency charge from
///   busy-waiting to *accounting* on a per-PE logical clock (delay +
///   1ns per remote op; barriers max-sync the clocks, explicit ones
///   adding 10ns) — mirroring the Rust substrate's `ClockMode::Virtual`
///   so virtual walls agree across backends. Final per-PE clocks ride
///   the stats file's 8th column;
/// * `LOL_STUB_TRACE=<cap>` records up to `cap` communication events
///   per PE (remote get/put `G`/`P`, explicit barriers `B`/`b`, lock
///   ops `L`/`T`/`U` via the `LOL_LOCK_TRACE` hook) and writes them to
///   `<out>.pe<N>.trace` as `<code> <peer> <word-addr> <bytes> <t_ns>`
///   lines plus a `= <dropped> <end_ns>` trailer. Word addresses are
///   cumulative over the registration order, matching the Rust
///   substrate's symmetric layout, so traces diff across backends.
///
/// Compile with `cc -std=c99 -I<dir-with-shmem.h> prog.c -lm -pthread`.
pub const SHMEM_STUB_H: &str = r#"/* multi-PE OpenSHMEM stub over pthreads, for toolchains without SHMEM */
#ifndef LOL_SHMEM_STUB_H
#define LOL_SHMEM_STUB_H
#include <pthread.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>

#define LOL_STUB_MAX_PES 256
#define LOL_STUB_MAX_SYMS 256
/* ceil(log2(LOL_STUB_MAX_PES)): dissemination-barrier rounds */
#define LOL_STUB_MAX_ROUNDS 8

/* hooks consumed by the generated runtime (see LOL_RUNTIME) */
#define LOL_SYMMETRIC __thread
#define LOL_SYM_REG(p, n) lol_stub_sym_reg((void *)(p), (n))
#define LOL_SYM_REG_DONE() lol_stub_sym_done()
#define LOL_MAIN_DRIVER(fn) lol_stub_launch(fn)
#define LOL_PUTS(s) lol_stub_puts(s)
#define LOL_GETS(buf, n) lol_stub_gets((buf), (n))
#define LOL_SRAND(seed) lol_stub_srand((unsigned long long)(seed))
#define LOL_RAND() lol_stub_rand()
#define LOL_LOCK_KIND lol_stub_lock_kind
#define LOL_LOCK_RELAX() lol_stub_relax()
#define LOL_LOCK_TRACE(k, cell, pe, b) lol_stub_trace_ev((k), (pe), (const void *)(cell), (b))
#define LOL_LOCK_ENTER(pe) lol_stub_lock_enter(pe)
#define LOL_LOCK_EXIT() lol_stub_lock_exit()
static int lol_stub_lock_kind = 0; /* 0 = cas, 1 = ticket (LOL_STUB_LOCK) */
/* >0 while inside a lol_lock_* op: virtual-clock charging is then done
   once at LOL_LOCK_ENTER (mirroring the Rust substrate's one charge
   per lock op) and suppressed for the AMOs the op spins on — retries
   are scheduling-dependent and must not advance deterministic time. */
static __thread int lol_stub_lock_depth = 0;

typedef struct { char *addr; size_t size; } lol_stub_sym_t;
typedef struct {
    unsigned long long local_gets, remote_gets, local_puts, remote_puts, amos, barriers;
} lol_stub_stats_t;

static int lol_stub_npes = 1;
static int lol_stub_passthrough = 1; /* old single-PE behavior: no env, no capture */
static __thread int lol_stub_me = 0;
static lol_stub_sym_t lol_stub_syms[LOL_STUB_MAX_PES][LOL_STUB_MAX_SYMS];
static int lol_stub_nsyms[LOL_STUB_MAX_PES];
static lol_stub_stats_t lol_stub_stats[LOL_STUB_MAX_PES];
static FILE *lol_stub_cap[LOL_STUB_MAX_PES]; /* per-PE capture files, or NULL */

/* -- clocks: wall trace epoch + the virtual-time logical clock -- */

static int lol_stub_clock_virtual = 0; /* LOL_STUB_CLOCK=virtual */
static __thread unsigned long long lol_stub_vclock = 0;
static __thread int lol_stub_bar_parity = 0;
/* double-buffered per-barrier clock publication (parity stops episode
   k+1's stores racing episode k's reads — same scheme as the Rust
   substrate's World::vclock_pub) */
static unsigned long long lol_stub_vpub[2][LOL_STUB_MAX_PES];
static unsigned long long lol_stub_vclock_final[LOL_STUB_MAX_PES];
static unsigned long long lol_stub_end_ns[LOL_STUB_MAX_PES];
static unsigned long long lol_stub_epoch = 0; /* wall ns at launch */
static unsigned long long lol_stub_clk_overhead = 0; /* calibrated clock_gettime cost */

static unsigned long long lol_stub_wall_raw(void) {
#ifdef CLOCK_MONOTONIC
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (unsigned long long)ts.tv_sec * 1000000000ull + (unsigned long long)ts.tv_nsec;
#else
    return 0;
#endif
}

/* this PE's timestamp on the job's clock (wall offset or virtual) */
static unsigned long long lol_stub_now_ns(void) {
    if (lol_stub_clock_virtual) return lol_stub_vclock;
    return lol_stub_wall_raw() - lol_stub_epoch;
}

/* Measure the floor cost of one clock_gettime call (min of many
   back-to-back pairs). Wall-mode busy-waits subtract it so the
   injected latency is accurate even when the delay is only a few
   clock-read costs long (fast machines, ~10ns models). */
static void lol_stub_calibrate_clock(void) {
#ifdef CLOCK_MONOTONIC
    unsigned long long best = (unsigned long long)-1, a, b;
    int i;
    for (i = 0; i < 128; i++) {
        a = lol_stub_wall_raw();
        b = lol_stub_wall_raw();
        if (b > a && b - a < best) best = b - a;
    }
    if (best != (unsigned long long)-1) lol_stub_clk_overhead = best;
#endif
}

/* -- bounded per-PE event recorder (LOL_STUB_TRACE=<cap>) -- */

typedef struct {
    char kind;
    int peer;
    unsigned addr, bytes;
    unsigned long long t;
} lol_stub_ev_t;

static unsigned lol_stub_trace_cap = 0; /* 0 = tracing off */
static lol_stub_ev_t *lol_stub_evs[LOL_STUB_MAX_PES];
static unsigned lol_stub_nevs[LOL_STUB_MAX_PES];
static unsigned long long lol_stub_evdrop[LOL_STUB_MAX_PES];

/* Word offset of a symmetric address in the job-wide layout:
   cumulative over registration order, which matches the Rust
   substrate's SharedLayout (data cell then lock cell, declaration
   order) — so the same program yields the same addresses on every
   backend. */
static unsigned lol_stub_word_addr(const void *p) {
    int me = lol_stub_me, i;
    unsigned base = 0;
    for (i = 0; i < lol_stub_nsyms[me]; i++) {
        char *a = lol_stub_syms[me][i].addr;
        if ((const char *)p >= a && (const char *)p < a + lol_stub_syms[me][i].size)
            return base + (unsigned)(((const char *)p - a) / 8);
        base += (unsigned)(lol_stub_syms[me][i].size / 8);
    }
    return 0;
}

static void lol_stub_trace_ev(char kind, int peer, const void *addr, unsigned bytes) {
    int me = lol_stub_me;
    unsigned n;
    if (lol_stub_trace_cap == 0) return;
    if (!lol_stub_evs[me]) {
        lol_stub_evs[me] = (lol_stub_ev_t *)malloc(sizeof(lol_stub_ev_t) * lol_stub_trace_cap);
        if (!lol_stub_evs[me]) { lol_stub_evdrop[me]++; return; }
    }
    n = lol_stub_nevs[me];
    if (n >= lol_stub_trace_cap) { lol_stub_evdrop[me]++; return; }
    lol_stub_evs[me][n].kind = kind;
    lol_stub_evs[me][n].peer = peer;
    lol_stub_evs[me][n].addr = addr ? lol_stub_word_addr(addr) : 0;
    lol_stub_evs[me][n].bytes = bytes;
    lol_stub_evs[me][n].t = lol_stub_now_ns();
    lol_stub_nevs[me] = n + 1;
}

static void lol_stub_fatal(const char *msg) {
    fprintf(stderr, "lol-stub: %s\n", msg);
    exit(2);
}

/* Briefly back off in a spin loop: oversubscribed PE threads (more PEs
   than cores) must let the thread they wait on run. Guarded on
   CLOCK_MONOTONIC because nanosleep comes from the same POSIX level;
   without it (strict-C99 build) the loop degrades to a pure spin. */
static __thread unsigned lol_stub_spin_count = 0;
static void lol_stub_relax(void) {
#ifdef CLOCK_MONOTONIC
    if ((++lol_stub_spin_count & 0xFF) == 0) {
        struct timespec ts;
        ts.tv_sec = 0;
        ts.tv_nsec = 10000; /* 10us */
        nanosleep(&ts, NULL);
    }
#else
    ++lol_stub_spin_count;
#endif
}

/* -- barrier algorithms (LOL_STUB_BARRIER: central | dissem) -- */

/* mutex+cond centralized barrier: pthread_barrier_t is optional under
   -std=c99, and one shared generation counter is the teaching-friendly
   default (the analog of the Rust substrate's CentralBarrier) */
static pthread_mutex_t lol_stub_bar_mu = PTHREAD_MUTEX_INITIALIZER;
static pthread_cond_t lol_stub_bar_cv = PTHREAD_COND_INITIALIZER;
static int lol_stub_bar_waiting = 0;
static unsigned long long lol_stub_bar_gen = 0;
static int lol_stub_bar_kind = 0; /* 0 = central, 1 = dissem */

/* dissemination barrier: log2(npes) rounds of pairwise signalling on
   per-(round, PE) generation counters, like DisseminationBarrier */
static int lol_stub_dissem_rounds = 0;
static unsigned long long lol_stub_dissem_flags[LOL_STUB_MAX_ROUNDS][LOL_STUB_MAX_PES];
static __thread unsigned long long lol_stub_dissem_gen = 0;

static void lol_stub_dissem_wait(void) {
    int r;
    unsigned long long g = ++lol_stub_dissem_gen;
    for (r = 0; r < lol_stub_dissem_rounds; r++) {
        int partner = (lol_stub_me + (1 << r)) % lol_stub_npes;
        __atomic_add_fetch(&lol_stub_dissem_flags[r][partner], 1, __ATOMIC_ACQ_REL);
        while (__atomic_load_n(&lol_stub_dissem_flags[r][lol_stub_me], __ATOMIC_ACQUIRE) < g)
            lol_stub_relax();
    }
}

/* One barrier episode. `explicit_` = user-visible HUGZ (costs 10
   virtual ns); the registration fence passes 0 (clock-sync only), so
   virtual walls match the Rust substrate's barrier accounting. */
static void lol_stub_barrier_wait(int explicit_) {
    int parity = lol_stub_bar_parity;
    if (lol_stub_clock_virtual)
        __atomic_store_n(&lol_stub_vpub[parity][lol_stub_me], lol_stub_vclock, __ATOMIC_RELEASE);
    if (lol_stub_npes > 1) {
        if (lol_stub_bar_kind == 1) {
            lol_stub_dissem_wait();
        } else {
            pthread_mutex_lock(&lol_stub_bar_mu);
            {
                unsigned long long gen = lol_stub_bar_gen;
                if (++lol_stub_bar_waiting == lol_stub_npes) {
                    lol_stub_bar_waiting = 0;
                    lol_stub_bar_gen++;
                    pthread_cond_broadcast(&lol_stub_bar_cv);
                } else {
                    while (gen == lol_stub_bar_gen)
                        pthread_cond_wait(&lol_stub_bar_cv, &lol_stub_bar_mu);
                }
            }
            pthread_mutex_unlock(&lol_stub_bar_mu);
        }
    }
    if (lol_stub_clock_virtual) {
        unsigned long long sync = 0, v;
        int pe;
        for (pe = 0; pe < lol_stub_npes; pe++) {
            v = __atomic_load_n(&lol_stub_vpub[parity][pe], __ATOMIC_ACQUIRE);
            if (v > sync) sync = v;
        }
        lol_stub_vclock = sync + (explicit_ ? 10 : 0);
        lol_stub_bar_parity ^= 1;
    }
}

/* -- interconnect latency model (LOL_STUB_LATENCY) --
   Canonical tokens, same grammar the Rust substrate's LatencyModel
   round-trips: off | flat:<ns> | mesh:<w>[:<base>:<hop>] |
   torus:<w>[x<h>][:<base>:<hop>] */

static int lol_stub_lat_kind = 0; /* 0 off, 1 flat, 2 mesh, 3 torus */
static int lol_stub_lat_w = 1, lol_stub_lat_h = 1;
static unsigned long long lol_stub_lat_base = 0, lol_stub_lat_hop = 0;

static void lol_stub_parse_latency(const char *s) {
    char *end;
    if (!s || !*s || strcmp(s, "off") == 0) { lol_stub_lat_kind = 0; return; }
    if (strncmp(s, "flat", 4) == 0) {
        lol_stub_lat_kind = 1;
        lol_stub_lat_base = s[4] == ':' ? strtoull(s + 5, NULL, 10) : 1000;
        return;
    }
    if (strncmp(s, "mesh", 4) == 0 || strncmp(s, "torus", 5) == 0) {
        int torus = s[0] == 't';
        const char *p = s + (torus ? 5 : 4);
        lol_stub_lat_kind = torus ? 3 : 2;
        lol_stub_lat_w = 4; /* bare mesh/torus = the 4x4 Epiphany-shaped default */
        lol_stub_lat_h = 4;
        lol_stub_lat_base = 50;
        lol_stub_lat_hop = 11;
        if (*p == ':') {
            lol_stub_lat_w = (int)strtoul(p + 1, &end, 10);
            lol_stub_lat_h = lol_stub_lat_w;
            if (torus && *end == 'x') lol_stub_lat_h = (int)strtoul(end + 1, &end, 10);
            if (*end == ':') {
                lol_stub_lat_base = strtoull(end + 1, &end, 10);
                if (*end == ':') lol_stub_lat_hop = strtoull(end + 1, &end, 10);
            }
        }
        lol_stub_lat_h = torus ? lol_stub_lat_h : lol_stub_lat_w;
        if (lol_stub_lat_w < 1 || lol_stub_lat_h < 1)
            lol_stub_fatal("latency grid dimensions must be >= 1");
        return;
    }
    lol_stub_fatal("unknown LOL_STUB_LATENCY model (off|flat:NS|mesh:W:B:H|torus:WxH:B:H)");
}

static unsigned long long lol_stub_delay_ns(int from, int to) {
    int fx, fy, tx, ty, dx, dy;
    if (from == to || lol_stub_lat_kind == 0) return 0;
    if (lol_stub_lat_kind == 1) return lol_stub_lat_base;
    fx = from % lol_stub_lat_w; fy = from / lol_stub_lat_w;
    tx = to % lol_stub_lat_w;   ty = to / lol_stub_lat_w;
    if (lol_stub_lat_kind == 3) { fy %= lol_stub_lat_h; ty %= lol_stub_lat_h; }
    dx = fx > tx ? fx - tx : tx - fx;
    dy = fy > ty ? fy - ty : ty - fy;
    if (lol_stub_lat_kind == 3) { /* wraparound links halve worst-case hops */
        if (lol_stub_lat_w - dx < dx) dx = lol_stub_lat_w - dx;
        if (lol_stub_lat_h - dy < dy) dy = lol_stub_lat_h - dy;
    }
    return lol_stub_lat_base + (unsigned long long)(dx + dy) * lol_stub_lat_hop;
}

/* Pay the modelled delay for touching `pe`. Virtual mode *accounts*
   it (delay + 1ns per remote op, like the Rust substrate); wall mode
   busy-waits it out (sub-microsecond delays need spinning, not
   sleeping), minus the calibrated clock-read overhead so the injected
   latency stays accurate on fast machines. Degrades to zero cost when
   time.h has no monotonic clock (strict C99 without POSIX). */
static void lol_stub_charge(int pe) {
    unsigned long long ns = lol_stub_delay_ns(lol_stub_me, pe);
    if (lol_stub_clock_virtual) {
        if (pe != lol_stub_me && !lol_stub_lock_depth) lol_stub_vclock += ns + 1;
        return;
    }
    if (ns == 0) return;
#ifdef CLOCK_MONOTONIC
    {
        unsigned long long t0, now;
        /* The loop's final clock read lands ~one read-cost past the
           deadline on average; shrinking the target by the calibrated
           floor cost centers the error instead of always overshooting. */
        if (ns <= lol_stub_clk_overhead) return;
        ns -= lol_stub_clk_overhead;
        t0 = lol_stub_wall_raw();
        do {
            now = lol_stub_wall_raw();
        } while (now - t0 < ns);
    }
#endif
}

/* One fixed virtual charge per lock operation (acquire/try/release),
   paid up front like the Rust substrate's Pe::lock; the AMOs inside
   the op then charge nothing (see lol_stub_charge). Wall mode is
   untouched: it busy-waits per AMO, which is what a real spinning
   lock over a slow interconnect feels like. */
static void lol_stub_lock_enter(int pe) {
    if (lol_stub_clock_virtual && pe != lol_stub_me)
        lol_stub_vclock += lol_stub_delay_ns(lol_stub_me, pe) + 1;
    lol_stub_lock_depth++;
}
static void lol_stub_lock_exit(void) { lol_stub_lock_depth--; }

/* -- symmetric segment: per-thread registry + address translation -- */

static void lol_stub_sym_reg(void *p, size_t n) {
    int me = lol_stub_me;
    if (lol_stub_nsyms[me] >= LOL_STUB_MAX_SYMS) lol_stub_fatal("too many symmetric objects");
    lol_stub_syms[me][lol_stub_nsyms[me]].addr = (char *)p;
    lol_stub_syms[me][lol_stub_nsyms[me]].size = n;
    lol_stub_nsyms[me]++;
}

/* all PEs must finish registering before anyone translates (internal
   fence: untraced, free in virtual time — like the Rust substrate's
   collective-allocation barrier) */
static void lol_stub_sym_done(void) { lol_stub_barrier_wait(0); }

/* The single remote-access choke point: every remote get/put/atomic
   translates through here, so charging the interconnect model here
   covers the whole SHMEM surface (mirroring the Rust substrate, which
   charges in each Pe accessor). */
static void *lol_stub_xlate(const void *p, int pe) {
    int me = lol_stub_me;
    int i;
    if (pe == me) return (void *)p;
    if (pe < 0 || pe >= lol_stub_npes) lol_stub_fatal("PE out of range");
    lol_stub_charge(pe);
    for (i = 0; i < lol_stub_nsyms[me]; i++) {
        char *base = lol_stub_syms[me][i].addr;
        if ((const char *)p >= base && (const char *)p < base + lol_stub_syms[me][i].size)
            return lol_stub_syms[pe][i].addr + ((const char *)p - base);
    }
    lol_stub_fatal("address is not symmetric");
    return NULL;
}

/* -- the OpenSHMEM surface the generated code uses -- */

static void shmem_init(void) {}
static void shmem_finalize(void) {}
static int shmem_my_pe(void) { return lol_stub_me; }
static int shmem_n_pes(void) { return lol_stub_npes; }
static void shmem_barrier_all(void) {
    lol_stub_stats[lol_stub_me].barriers++;
    lol_stub_trace_ev('B', lol_stub_me, NULL, 0);
    lol_stub_barrier_wait(1);
    lol_stub_trace_ev('b', lol_stub_me, NULL, 0);
}

static long long shmem_longlong_g(const long long *src, int pe) {
    long long v;
    if (pe == lol_stub_me) { lol_stub_stats[lol_stub_me].local_gets++; return *src; }
    lol_stub_stats[lol_stub_me].remote_gets++;
    __atomic_load((long long *)lol_stub_xlate(src, pe), &v, __ATOMIC_SEQ_CST);
    lol_stub_trace_ev('G', pe, src, 8);
    return v;
}
static void shmem_longlong_p(long long *dst, long long v, int pe) {
    if (pe == lol_stub_me) { lol_stub_stats[lol_stub_me].local_puts++; *dst = v; return; }
    lol_stub_stats[lol_stub_me].remote_puts++;
    __atomic_store((long long *)lol_stub_xlate(dst, pe), &v, __ATOMIC_SEQ_CST);
    lol_stub_trace_ev('P', pe, dst, 8);
}
static double shmem_double_g(const double *src, int pe) {
    double v;
    if (pe == lol_stub_me) { lol_stub_stats[lol_stub_me].local_gets++; return *src; }
    lol_stub_stats[lol_stub_me].remote_gets++;
    __atomic_load((double *)lol_stub_xlate(src, pe), &v, __ATOMIC_SEQ_CST);
    lol_stub_trace_ev('G', pe, src, 8);
    return v;
}
static void shmem_double_p(double *dst, double v, int pe) {
    if (pe == lol_stub_me) { lol_stub_stats[lol_stub_me].local_puts++; *dst = v; return; }
    lol_stub_stats[lol_stub_me].remote_puts++;
    __atomic_store((double *)lol_stub_xlate(dst, pe), &v, __ATOMIC_SEQ_CST);
    lol_stub_trace_ev('P', pe, dst, 8);
}
static long shmem_long_atomic_compare_swap(long *target, long cond, long value, int pe) {
    long *t = (long *)lol_stub_xlate(target, pe);
    long expected = cond;
    lol_stub_stats[lol_stub_me].amos++;
    __atomic_compare_exchange_n(t, &expected, value, 0, __ATOMIC_SEQ_CST, __ATOMIC_SEQ_CST);
    return expected;
}
static long shmem_long_atomic_swap(long *target, long value, int pe) {
    long *t = (long *)lol_stub_xlate(target, pe);
    lol_stub_stats[lol_stub_me].amos++;
    return __atomic_exchange_n(t, value, __ATOMIC_SEQ_CST);
}
static long shmem_long_atomic_fetch(const long *target, int pe) {
    long v;
    lol_stub_stats[lol_stub_me].amos++;
    __atomic_load((long *)lol_stub_xlate(target, pe), &v, __ATOMIC_SEQ_CST);
    return v;
}
static long shmem_long_atomic_fetch_inc(long *target, int pe) {
    lol_stub_stats[lol_stub_me].amos++;
    return __atomic_fetch_add((long *)lol_stub_xlate(target, pe), 1, __ATOMIC_SEQ_CST);
}

/* -- per-PE output capture (VISIBLE) -- */

static void lol_stub_puts(const char *s) {
    FILE *f = lol_stub_cap[lol_stub_me];
    fputs(s, f ? f : stdout);
}

/* -- per-PE stdin replay (GIMMEH): every PE sees the whole stream -- */

static pthread_mutex_t lol_stub_in_mu = PTHREAD_MUTEX_INITIALIZER;
static char *lol_stub_in_buf = NULL;
static size_t lol_stub_in_len = 0;
static int lol_stub_in_ready = 0;
static __thread size_t lol_stub_in_pos = 0;

static void lol_stub_slurp(void) {
    pthread_mutex_lock(&lol_stub_in_mu);
    if (!lol_stub_in_ready) {
        size_t cap = 4096, n;
        lol_stub_in_buf = (char *)malloc(cap);
        if (!lol_stub_in_buf) lol_stub_fatal("out of memory");
        while ((n = fread(lol_stub_in_buf + lol_stub_in_len, 1, cap - lol_stub_in_len, stdin)) > 0) {
            lol_stub_in_len += n;
            if (lol_stub_in_len == cap) {
                cap *= 2;
                lol_stub_in_buf = (char *)realloc(lol_stub_in_buf, cap);
                if (!lol_stub_in_buf) lol_stub_fatal("out of memory");
            }
        }
        lol_stub_in_ready = 1;
    }
    pthread_mutex_unlock(&lol_stub_in_mu);
}

static char *lol_stub_gets(char *buf, int n) {
    int i = 0;
    if (lol_stub_passthrough) return fgets(buf, n, stdin);
    lol_stub_slurp();
    if (lol_stub_in_pos >= lol_stub_in_len) return NULL;
    while (i < n - 1 && lol_stub_in_pos < lol_stub_in_len) {
        char c = lol_stub_in_buf[lol_stub_in_pos++];
        buf[i++] = c;
        if (c == '\n') break;
    }
    buf[i] = '\0';
    return buf;
}

/* -- per-PE deterministic RNG (xorshift64*) -- */

static unsigned long long lol_stub_seed0 = 0;
static __thread unsigned long long lol_stub_rng_state = 0x853c49e6748fea9bULL;

static void lol_stub_srand(unsigned long long seed) {
    lol_stub_rng_state = (seed ^ lol_stub_seed0) * 0x9E3779B97F4A7C15ULL + 0x853c49e6748fea9bULL
        + (unsigned long long)lol_stub_me;
    /* xorshift's zero state is absorbing; the mix above is invertible,
       so some seed lands exactly on it */
    if (lol_stub_rng_state == 0) lol_stub_rng_state = 0x853c49e6748fea9bULL;
}
static int lol_stub_rand(void) {
    unsigned long long x = lol_stub_rng_state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    lol_stub_rng_state = x;
    return (int)(((x * 0x2545F4914F6CDD1DULL) >> 33) & 0x7fffffff);
}

/* -- SPMD launch: LOL_STUB_NPES threads, each running lol_main -- */

typedef int (*lol_stub_main_fn)(void);
static lol_stub_main_fn lol_stub_fn;

static void *lol_stub_thread(void *arg) {
    int rc;
    lol_stub_me = (int)(size_t)arg;
    rc = lol_stub_fn();
    lol_stub_vclock_final[lol_stub_me] = lol_stub_vclock;
    lol_stub_end_ns[lol_stub_me] = lol_stub_now_ns();
    return (void *)(size_t)(unsigned)rc;
}

static int lol_stub_launch(lol_stub_main_fn fn) {
    pthread_t tid[LOL_STUB_MAX_PES];
    const char *np = getenv("LOL_STUB_NPES");
    const char *seed = getenv("LOL_STUB_SEED");
    const char *out = getenv("LOL_STUB_OUT");
    const char *lat = getenv("LOL_STUB_LATENCY");
    const char *bar = getenv("LOL_STUB_BARRIER");
    const char *lock = getenv("LOL_STUB_LOCK");
    const char *clk = getenv("LOL_STUB_CLOCK");
    const char *trace = getenv("LOL_STUB_TRACE");
    int pe, rc = 0;
    lol_stub_npes = np ? atoi(np) : 1;
    if (lol_stub_npes < 1) lol_stub_npes = 1;
    if (lol_stub_npes > LOL_STUB_MAX_PES) lol_stub_fatal("too many PEs (max 256)");
    if (seed) lol_stub_seed0 = strtoull(seed, NULL, 10);
    if (lat) lol_stub_parse_latency(lat);
    if (bar) {
        if (strcmp(bar, "central") == 0) lol_stub_bar_kind = 0;
        else if (strcmp(bar, "dissem") == 0) lol_stub_bar_kind = 1;
        else lol_stub_fatal("unknown LOL_STUB_BARRIER (central|dissem)");
    }
    if (lock) {
        if (strcmp(lock, "cas") == 0) lol_stub_lock_kind = 0;
        else if (strcmp(lock, "ticket") == 0) lol_stub_lock_kind = 1;
        else lol_stub_fatal("unknown LOL_STUB_LOCK (cas|ticket)");
    }
    if (clk) {
        if (strcmp(clk, "wall") == 0) lol_stub_clock_virtual = 0;
        else if (strcmp(clk, "virtual") == 0) lol_stub_clock_virtual = 1;
        else lol_stub_fatal("unknown LOL_STUB_CLOCK (wall|virtual)");
    }
    if (trace) lol_stub_trace_cap = (unsigned)strtoul(trace, NULL, 10);
    if (!lol_stub_clock_virtual && lol_stub_lat_kind != 0) lol_stub_calibrate_clock();
    lol_stub_epoch = lol_stub_wall_raw();
    while ((1 << lol_stub_dissem_rounds) < lol_stub_npes) lol_stub_dissem_rounds++;
    lol_stub_passthrough = (lol_stub_npes == 1 && !out);
    if (lol_stub_passthrough) return fn();
    if (out) {
        char path[4096];
        for (pe = 0; pe < lol_stub_npes; pe++) {
            snprintf(path, sizeof path, "%s.pe%d.out", out, pe);
            lol_stub_cap[pe] = fopen(path, "w");
            if (!lol_stub_cap[pe]) lol_stub_fatal("cannot open per-PE capture file");
        }
    }
    lol_stub_fn = fn;
    for (pe = 0; pe < lol_stub_npes; pe++)
        if (pthread_create(&tid[pe], NULL, lol_stub_thread, (void *)(size_t)pe) != 0)
            lol_stub_fatal("pthread_create failed");
    for (pe = 0; pe < lol_stub_npes; pe++) {
        void *ret = NULL;
        pthread_join(tid[pe], &ret);
        if ((int)(size_t)ret != 0) rc = (int)(size_t)ret;
    }
    if (out) {
        char path[4096];
        FILE *f;
        for (pe = 0; pe < lol_stub_npes; pe++) fclose(lol_stub_cap[pe]);
        snprintf(path, sizeof path, "%s.stats", out);
        f = fopen(path, "w");
        if (f) {
            for (pe = 0; pe < lol_stub_npes; pe++) {
                lol_stub_stats_t *s = &lol_stub_stats[pe];
                /* 8th column: the PE's final virtual clock (0 on wall) */
                fprintf(f, "%d %llu %llu %llu %llu %llu %llu %llu\n", pe, s->local_gets,
                        s->remote_gets, s->local_puts, s->remote_puts, s->amos, s->barriers,
                        lol_stub_vclock_final[pe]);
            }
            fclose(f);
        }
        if (lol_stub_trace_cap > 0) {
            unsigned i;
            for (pe = 0; pe < lol_stub_npes; pe++) {
                snprintf(path, sizeof path, "%s.pe%d.trace", out, pe);
                f = fopen(path, "w");
                if (!f) continue;
                for (i = 0; i < lol_stub_nevs[pe]; i++) {
                    lol_stub_ev_t *e = &lol_stub_evs[pe][i];
                    fprintf(f, "%c %d %u %u %llu\n", e->kind, e->peer, e->addr, e->bytes, e->t);
                }
                /* trailer: dropped count + the PE's final clock */
                fprintf(f, "= %llu %llu\n", lol_stub_evdrop[pe], lol_stub_end_ns[pe]);
                fclose(f);
            }
        }
    }
    return rc;
}
#endif
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_has_the_key_pieces() {
        for needle in [
            "lol_value_t",
            "lol_sum",
            "lol_quoshunt",
            "lol_saem",
            "lol_lock_acquire",
            "shmem_long_atomic_compare_swap",
            "%.2f",       // NUMBAR printing matches the interpreter
            "isnan(v.f)", // non-finite NUMBARs render nan/inf/-inf everywhere
            "lol_arr_new",
            // the hook macros a stub shmem.h may override
            "#ifndef LOL_SYMMETRIC",
            "#ifndef LOL_SYM_REG",
            "#ifndef LOL_MAIN_DRIVER",
            "#ifndef LOL_PUTS",
            "#ifndef LOL_GETS",
            "#ifndef LOL_SRAND",
            "#ifndef LOL_LOCK_KIND",
            "#ifndef LOL_LOCK_RELAX",
            "#ifndef LOL_LOCK_TRACE",
            // YARNs are heap-allocated (no 256-byte cap)
            "char *s;",
            "lol_strdup",
        ] {
            assert!(LOL_RUNTIME.contains(needle), "runtime lacks {needle}");
        }
        assert!(!LOL_RUNTIME.contains("char s[256]"), "the YARN cap is supposed to be gone");
    }

    #[test]
    fn stub_covers_the_runtime_calls() {
        // Every shmem_* symbol the runtime/emitter uses must exist in
        // the stub.
        for needle in [
            "shmem_init",
            "shmem_finalize",
            "shmem_my_pe",
            "shmem_n_pes",
            "shmem_barrier_all",
            "shmem_longlong_g",
            "shmem_longlong_p",
            "shmem_double_g",
            "shmem_double_p",
            "shmem_long_atomic_compare_swap",
            "shmem_long_atomic_swap",
            // every hook the runtime leaves overridable must be defined
            "#define LOL_SYMMETRIC",
            "#define LOL_SYM_REG",
            "#define LOL_SYM_REG_DONE",
            "#define LOL_MAIN_DRIVER",
            "#define LOL_PUTS",
            "#define LOL_GETS",
            "#define LOL_SRAND",
            "#define LOL_RAND",
            "#define LOL_LOCK_KIND",
            "#define LOL_LOCK_RELAX",
            // the ticket-lock AMOs the runtime's lock functions use
            "shmem_long_atomic_fetch",
            "shmem_long_atomic_fetch_inc",
            // the engine-driver env protocol
            "LOL_STUB_NPES",
            "LOL_STUB_SEED",
            "LOL_STUB_OUT",
            "LOL_STUB_LATENCY",
            "LOL_STUB_BARRIER",
            "LOL_STUB_LOCK",
            // the trace + virtual-clock protocol
            "LOL_STUB_CLOCK",
            "LOL_STUB_TRACE",
            "#define LOL_LOCK_TRACE",
            "lol_stub_trace_ev",
            "lol_stub_word_addr",
            "lol_stub_vclock",
            "lol_stub_vpub",
            "lol_stub_calibrate_clock",
            // latency models charge at the remote-access choke point
            "lol_stub_charge",
            "lol_stub_delay_ns",
            // both barrier algorithms exist
            "lol_stub_dissem_wait",
        ] {
            assert!(SHMEM_STUB_H.contains(needle), "stub lacks {needle}");
        }
    }

    #[test]
    fn braces_balance() {
        for (name, text) in [("runtime", LOL_RUNTIME), ("stub", SHMEM_STUB_H)] {
            let open = text.matches('{').count();
            let close = text.matches('}').count();
            assert_eq!(open, close, "{name} braces unbalanced");
        }
    }
}
