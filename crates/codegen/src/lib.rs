//! # lol-c-codegen — LOLCODE → C + OpenSHMEM (the paper's `lcc` output)
//!
//! The paper's compiler is "a source-to-source compiler, written in C,
//! \[that\] translates LOLCODE with parallel extensions to C with
//! OpenSHMEM routines" (§II). This crate reproduces that output path in
//! Rust: [`emit_c`] turns an analyzed program into a single portable
//! C99 translation unit that
//!
//! * declares every `WE HAS A` variable as a static symmetric object
//!   (plus a `long` lock cell for `AN IM SHARIN IT`),
//! * lowers `UR` references under `TXT MAH BFF` to `shmem_*_g` /
//!   `shmem_*_p`, `HUGZ` to `shmem_barrier_all()`, and the implicit
//!   locks to OpenSHMEM atomics,
//! * calls `shmem_init()` transparently at the top of `main` (§VI.A),
//! * carries the dynamic value semantics in an embedded C runtime.
//!
//! Because no OpenSHMEM library exists in this environment, the crate
//! also ships [`SHMEM_STUB_H`], a multi-PE pthread stub good enough to
//! compile and *run* the generated C with any C99 compiler — and the
//! [`driver`] module that probes the system compiler, builds the
//! generated C against that stub, executes the binary across PE
//! counts, and parses the per-PE outputs and operation counters back
//! out. That driver is what makes the C path a first-class engine
//! (`Backend::C` in the `lolcode` crate) rather than emit-only; the
//! tests compile-and-run against the interpreter differentially.

#![forbid(unsafe_code)]

pub mod driver;
mod emit;
pub mod runtime;

pub use runtime::{LOL_RUNTIME, SHMEM_STUB_H};

use lol_ast::diag::Diagnostic;
use lol_ast::Program;
use lol_sema::Analysis;

/// Emit a complete C translation unit for an analyzed program.
pub fn emit_c(program: &Program, analysis: &Analysis) -> Result<String, Diagnostic> {
    emit::CEmitter::new(analysis).emit_program(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lol_parser::parse;
    use lol_sema::analyze;

    fn build(src: &str) -> (Program, Analysis) {
        let p = parse(src).expect_program(src);
        let a = analyze(&p);
        assert!(a.is_ok(), "sema: {:?}", a.diags.iter().collect::<Vec<_>>());
        (p, a)
    }

    fn gen(src: &str) -> String {
        let (p, a) = build(src);
        emit_c(&p, &a).expect("codegen failed")
    }

    fn prog(body: &str) -> String {
        format!("HAI 1.2\n{body}\nKTHXBYE")
    }

    #[test]
    fn hello_world_shape() {
        let c = gen(&prog("VISIBLE \"HAI WORLD\""));
        assert!(c.contains("shmem_init();"));
        assert!(c.contains("shmem_finalize();"));
        assert!(c.contains("lol_print(lol_from_str(\"HAI WORLD\"));"));
        assert!(c.contains("int main(void)"));
        // Balanced braces — a cheap structural sanity check.
        assert_eq!(c.matches('{').count(), c.matches('}').count());
    }

    #[test]
    fn shared_vars_become_symmetric_statics() {
        let c = gen(&prog(
            "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n\
             WE HAS A pos ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32",
        ));
        assert!(c.contains("static LOL_SYMMETRIC long long g_x;"), "{c}");
        assert!(c.contains("static LOL_SYMMETRIC long g_x__lock[3];"));
        assert!(c.contains("static LOL_SYMMETRIC double g_pos[32];"));
        // Every symmetric object registers (in declaration order) so
        // the multi-PE stub can translate remote addresses.
        assert!(c.contains("LOL_SYM_REG(&g_x, sizeof g_x);"));
        assert!(c.contains("LOL_SYM_REG(g_x__lock, sizeof g_x__lock);"));
        assert!(c.contains("LOL_SYM_REG(g_pos, sizeof g_pos);"));
        let reg_x = c.find("LOL_SYM_REG(&g_x,").unwrap();
        let reg_pos = c.find("LOL_SYM_REG(g_pos,").unwrap();
        let done = c.find("LOL_SYM_REG_DONE();").unwrap();
        assert!(reg_x < reg_pos && reg_pos < done, "registration order = declaration order");
    }

    #[test]
    fn hugz_is_barrier_all() {
        let c = gen(&prog("HUGZ"));
        assert!(c.contains("shmem_barrier_all();"));
    }

    #[test]
    fn remote_refs_lower_to_shmem_g_p() {
        let c = gen(&prog(
            "WE HAS A a ITZ SRSLY A NUMBR\nWE HAS A b ITZ SRSLY A NUMBAR\n\
             I HAS A y\n\
             TXT MAH BFF 0 AN STUFF\n\
             y R UR a\n\
             UR b R 1.5\n\
             TTYL",
        ));
        assert!(c.contains("shmem_longlong_g(&g_a,"), "{c}");
        assert!(c.contains("shmem_double_p(&g_b,"), "{c}");
        // BFF bounds are checked.
        assert!(c.contains("shmem_n_pes()) lol_die(\"RUN0017\""));
    }

    #[test]
    fn locks_lower_to_atomics() {
        let c = gen(&prog(
            "WE HAS A x ITZ A NUMBR AN IM SHARIN IT\n\
             IM SRSLY MESIN WIF x\nDUN MESIN WIF x\n\
             IM MESIN WIF x, O RLY?\nYA RLY\nDUN MESIN WIF x\nOIC",
        ));
        assert!(c.contains("lol_lock_acquire(g_x__lock, shmem_my_pe());"));
        assert!(c.contains("lol_lock_release(g_x__lock, shmem_my_pe());"));
        assert!(c.contains("lol_lock_try(g_x__lock"));
    }

    #[test]
    fn me_and_frenz_lower_to_pe_queries() {
        let c = gen(&prog("VISIBLE ME\nVISIBLE MAH FRENZ"));
        assert!(c.contains("shmem_my_pe()"));
        assert!(c.contains("shmem_n_pes()"));
    }

    #[test]
    fn functions_are_emitted_with_prototypes() {
        let c = gen("HAI 1.2\nHOW IZ I add YR a AN YR b\nFOUND YR SUM OF a AN b\nIF U SAY SO\n\
             VISIBLE I IZ add YR 1 AN YR 2 MKAY\nKTHXBYE");
        assert!(c.contains("static lol_value_t f_add(lol_value_t v_a, lol_value_t v_b);"));
        assert!(c.contains("return lol_sum(v_a, v_b);"));
        assert!(c.contains("f_add(lol_from_int(1LL), lol_from_int(2LL))"));
    }

    #[test]
    fn srs_is_rejected() {
        let (p, a) = build(&prog("I HAS A x ITZ 1\nVISIBLE SRS \"x\""));
        let e = emit_c(&p, &a).unwrap_err();
        assert_eq!(e.code, "CGC0001");
    }

    #[test]
    fn deterministic_output() {
        let src = prog("WE HAS A x ITZ SRSLY A NUMBR\nx R 1\nHUGZ\nVISIBLE x");
        assert_eq!(gen(&src), gen(&src));
    }

    #[test]
    fn paper_example_c_structure() {
        // TXT MAH BFF k, UR b R MAH a / HUGZ / c R SUM OF a AN b.
        let c = gen(&prog(
            "WE HAS A a ITZ SRSLY A NUMBR\nWE HAS A b ITZ SRSLY A NUMBR\n\
             WE HAS A c ITZ SRSLY A NUMBR\nI HAS A k ITZ 0\n\
             TXT MAH BFF k, UR b R MAH a\nHUGZ\nc R SUM OF a AN b",
        ));
        let put = c.find("shmem_longlong_p(&g_b").expect("remote put");
        let bar = c.find("shmem_barrier_all();").expect("barrier");
        let sum = c.find("g_c = lol_to_int(lol_sum(").expect("local sum");
        assert!(put < bar && bar < sum, "paper ordering preserved");
    }
}
