//! End-to-end validation of the C backend: generate C, compile it with
//! the system C compiler against the multi-PE pthread OpenSHMEM stub
//! (via the [`lol_c_codegen::driver`]), run the binary across PE
//! counts, and compare its per-PE output byte-for-byte with the
//! interpreter running the same program on the Rust substrate.
//!
//! This is the `lcc code.lol -o executable.x && coprsh -np N ...`
//! pipeline of Section VI.E, minus the real OpenSHMEM library
//! (substituted per DESIGN.md §2).

use lol_c_codegen::driver::{self, RunRequest};
use lol_c_codegen::emit_c;
use lol_parser::parse;
use lol_sema::analyze;
use lol_shmem::ShmemConfig;
use std::time::Duration;

/// Interpreter per-PE outputs on the Rust substrate.
fn interp_outputs(src: &str, stdin: &[&str], n_pes: usize) -> Vec<String> {
    let p = parse(src).expect_program(src);
    let a = analyze(&p);
    assert!(a.is_ok(), "sema: {:?}", a.diags.iter().collect::<Vec<_>>());
    let input: Vec<String> = stdin.iter().map(|s| s.to_string()).collect();
    lol_shmem::run_spmd(ShmemConfig::new(n_pes).timeout(Duration::from_secs(30)), |pe| {
        match lol_interp::run_on_pe(&p, &a, pe, &input) {
            Ok(out) => out,
            Err(e) => pe.fail(e.to_string()),
        }
    })
    .expect("interp")
}

/// Build once via the driver, run at every PE count, and diff per-PE
/// output against the interpreter at the same PE count.
fn differential_pes(tag: &str, src: &str, stdin: &[&str], pe_counts: &[usize]) {
    if driver::cc().is_none() {
        eprintln!("skipping {tag}: no C compiler");
        return;
    }
    let p = parse(src).expect_program(src);
    let a = analyze(&p);
    assert!(a.is_ok(), "sema: {:?}", a.diags.iter().collect::<Vec<_>>());
    let c = emit_c(&p, &a).expect("codegen");
    let binary = driver::build(&c).unwrap_or_else(|e| panic!("{tag}: build failed: {e}\n{c}"));
    let input: Vec<String> = stdin.iter().map(|s| s.to_string()).collect();
    for &n_pes in pe_counts {
        let req = RunRequest {
            n_pes,
            seed: 7,
            input: &input,
            timeout: Duration::from_secs(30),
            ..Default::default()
        };
        let run = binary.run(&req).unwrap_or_else(|e| panic!("{tag}@{n_pes}: run failed: {e}"));
        assert_eq!(run.outputs.len(), n_pes, "{tag}: one capture per PE");
        assert_eq!(run.stats.len(), n_pes, "{tag}: one stats row per PE");
        let expect = interp_outputs(src, stdin, n_pes);
        assert_eq!(
            run.outputs, expect,
            "C backend diverges from interpreter on {tag} at {n_pes} PEs:\n{src}"
        );
    }
}

/// Single-PE differential (the original Section VI.E check).
fn differential(tag: &str, src: &str, stdin: &[&str]) {
    differential_pes(tag, src, stdin, &[1]);
}

fn prog(body: &str) -> String {
    format!("HAI 1.2\n{body}\nKTHXBYE")
}

#[test]
fn hello_world_compiles_and_runs() {
    differential("hello", &prog("VISIBLE \"HAI WORLD\""), &[]);
}

#[test]
fn arithmetic_matches() {
    differential(
        "arith",
        &prog(
            "VISIBLE SUM OF 2 AN PRODUKT OF 3 AN 4\n\
             VISIBLE QUOSHUNT OF 7 AN 2\n\
             VISIBLE QUOSHUNT OF 7.0 AN 2\n\
             VISIBLE MOD OF 17 AN 5\n\
             VISIBLE BIGGR OF 3 AN 7\n\
             VISIBLE SMALLR OF 3 AN 7\n\
             VISIBLE DIFF OF 3 AN 10",
        ),
        &[],
    );
}

#[test]
fn comparisons_and_bools_match() {
    differential(
        "bools",
        &prog(
            "VISIBLE BOTH SAEM 1 AN 1\nVISIBLE DIFFRINT 1 AN 2\n\
             VISIBLE BIGGER 4 AN 3\nVISIBLE SMALLR 4 AN 3\n\
             VISIBLE BOTH OF WIN AN FAIL\nVISIBLE EITHER OF WIN AN FAIL\n\
             VISIBLE WON OF WIN AN WIN\nVISIBLE NOT FAIL\n\
             VISIBLE ALL OF WIN AN WIN AN FAIL MKAY\nVISIBLE ANY OF FAIL AN WIN MKAY",
        ),
        &[],
    );
}

#[test]
fn control_flow_matches() {
    differential(
        "ctrl",
        &prog(
            "I HAS A x ITZ 2\n\
             BOTH SAEM x AN 1, O RLY?\nYA RLY\nVISIBLE \"one\"\n\
             MEBBE BOTH SAEM x AN 2\nVISIBLE \"two\"\nNO WAI\nVISIBLE \"other\"\nOIC\n\
             x, WTF?\nOMG 1\nVISIBLE \"a\"\nOMG 2\nVISIBLE \"b\"\nOMG 3\nVISIBLE \"c\"\nGTFO\n\
             OMGWTF\nVISIBLE \"d\"\nOIC",
        ),
        &[],
    );
}

#[test]
fn loops_match() {
    differential(
        "loops",
        &prog(
            "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 5\nVISIBLE SQUAR OF i!\nIM OUTTA YR l\n\
             VISIBLE \"\"\n\
             I HAS A n ITZ 3\n\
             IM IN YR d NERFIN YR j WILE BIGGER n AN 0\nVISIBLE n!\nn R DIFF OF n AN 1\nIM OUTTA YR d\n\
             VISIBLE \"\"",
        ),
        &[],
    );
}

#[test]
fn functions_match() {
    differential(
        "funcs",
        "HAI 1.2\n\
         HOW IZ I fact YR n\n\
         BOTH SAEM n AN 0, O RLY?\nYA RLY\nFOUND YR 1\nOIC\n\
         FOUND YR PRODUKT OF n AN I IZ fact YR DIFF OF n AN 1 MKAY\n\
         IF U SAY SO\n\
         VISIBLE I IZ fact YR 10 MKAY\nKTHXBYE",
        &[],
    );
}

#[test]
fn arrays_match() {
    differential(
        "arrays",
        &prog(
            "I HAS A a ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 6\n\
             IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 6\n\
             a'Z i R QUOSHUNT OF i AN 2.0\nIM OUTTA YR l\n\
             VISIBLE a'Z 5",
        ),
        &[],
    );
}

#[test]
fn casts_and_smoosh_match() {
    differential(
        "casts",
        &prog(
            "VISIBLE MAEK \"42\" A NUMBR\nVISIBLE MAEK 3.7 A NUMBR\nVISIBLE MAEK 3 A NUMBAR\n\
             VISIBLE SMOOSH \"a\" AN 1 AN 2.5 AN WIN MKAY\n\
             I HAS A x ITZ \"5\"\nx IS NOW A NUMBR\nVISIBLE SUM OF x AN 1",
        ),
        &[],
    );
}

#[test]
fn shared_vars_single_pe_match() {
    // At np=1, shared semantics must still hold (own instance).
    differential(
        "shared",
        &prog(
            "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n\
             WE HAS A pos ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 4\n\
             x R SUM OF ME AN 41\nHUGZ\n\
             IM SRSLY MESIN WIF x\nx R SUM OF x AN 1\nDUN MESIN WIF x\n\
             pos'Z 0 R 1.5\npos'Z 3 R 4.5\n\
             TXT MAH BFF 0, MAH pos'Z 1 R UR pos'Z 3\n\
             VISIBLE x \" \" pos'Z 1",
        ),
        &[],
    );
}

#[test]
fn whole_array_copy_matches() {
    differential(
        "arrcopy",
        &prog(
            "WE HAS A src ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 5\n\
             I HAS A dst ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 5\n\
             IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 5\n\
             src'Z i R PRODUKT OF i AN 11\nIM OUTTA YR l\n\
             TXT MAH BFF 0, MAH dst R UR src\n\
             VISIBLE dst'Z 4",
        ),
        &[],
    );
}

#[test]
fn gimmeh_matches() {
    differential(
        "gimmeh",
        &prog("I HAS A x\nGIMMEH x\nI HAS A y\nGIMMEH y\nVISIBLE SMOOSH x AN \"+\" AN y MKAY"),
        &["CHEEZ", "BURGER"],
    );
}

#[test]
fn interpolation_matches() {
    differential(
        "interp",
        &prog("I HAS A cat ITZ \"CEILING\"\nVISIBLE \"HAI :{cat} CAT :) BYE\""),
        &[],
    );
}

#[test]
fn trylock_pattern_matches() {
    differential(
        "trylock",
        &prog(
            "WE HAS A x ITZ A NUMBR AN IM SHARIN IT\n\
             IM MESIN WIF x, O RLY?\nYA RLY\nVISIBLE \"GOT IT\"\nDUN MESIN WIF x\n\
             NO WAI\nVISIBLE \"BUSY\"\nOIC",
        ),
        &[],
    );
}

// ---------------------------------------------------------------------
// Multi-PE: the part the single-PE stub could never check
// ---------------------------------------------------------------------

#[test]
fn hello_multi_pe_matches() {
    differential_pes(
        "hello_mp",
        &prog("VISIBLE \"HAI ITZ \" ME \" OF \" MAH FRENZ"),
        &[],
        &[1, 2, 4, 8],
    );
}

#[test]
fn barrier_and_remote_put_match_multi_pe() {
    // The paper's Section VI.C pattern: every PE puts into its
    // neighbour's symmetric b, barriers, then reads locally.
    differential_pes(
        "figure2_mp",
        &prog(
            "WE HAS A a ITZ SRSLY A NUMBR\nWE HAS A b ITZ SRSLY A NUMBR\n\
             WE HAS A c ITZ SRSLY A NUMBR\n\
             a R SUM OF ME AN 1\nHUGZ\n\
             I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n\
             TXT MAH BFF k, UR b R MAH a\nHUGZ\n\
             c R SUM OF a AN b\nVISIBLE \"PE \" ME \":: C = \" c",
        ),
        &[],
        &[2, 4, 7],
    );
}

#[test]
fn remote_reads_and_doubles_match_multi_pe() {
    // Remote element gets of a NUMBAR array (the heat-stencil halo
    // pattern): exercises shmem_double_g through address translation.
    differential_pes(
        "halo_mp",
        &prog(
            "WE HAS A u ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 4\n\
             IM IN YR f UPPIN YR i TIL BOTH SAEM i AN 4\n\
             u'Z i R SUM OF PRODUKT OF ME AN 10.0 AN i\nIM OUTTA YR f\n\
             HUGZ\n\
             I HAS A nxt ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n\
             I HAS A got ITZ 0.0\n\
             TXT MAH BFF nxt, got R UR u'Z 3\n\
             VISIBLE \"PE \" ME \" GOT \" got",
        ),
        &[],
        &[1, 2, 4],
    );
}

#[test]
fn remote_locks_serialize_increments_multi_pe() {
    // Every PE increments PE 0's shared counter under its lock; after
    // the barrier PE 0 must see exactly MAH FRENZ increments — the
    // canonical mutual-exclusion check, via remote atomics.
    differential_pes(
        "locks_mp",
        &prog(
            "WE HAS A x ITZ A NUMBR AN IM SHARIN IT\nHUGZ\n\
             I HAS A k ITZ 0\n\
             TXT MAH BFF k AN STUFF\n\
             IM SRSLY MESIN WIF UR x\nUR x R SUM OF UR x AN 1\nDUN MESIN WIF UR x\n\
             TTYL\nHUGZ\n\
             VISIBLE \"PE \" ME \" SEES X = \" x",
        ),
        &[],
        &[1, 2, 4, 6],
    );
}

#[test]
fn gimmeh_replays_stream_per_pe() {
    // Every PE sees the same stdin stream, like the interpreter's
    // per-PE input queue.
    differential_pes(
        "gimmeh_mp",
        &prog("I HAS A x\nGIMMEH x\nI HAS A y\nGIMMEH y\nVISIBLE ME \" SEZ \" x \"+\" y"),
        &["CHEEZ", "BURGER"],
        &[1, 3],
    );
}

#[test]
fn driver_reports_comm_stats_per_pe() {
    if driver::cc().is_none() {
        eprintln!("skipping: no C compiler");
        return;
    }
    let src = prog(
        "WE HAS A a ITZ SRSLY A NUMBR\nWE HAS A b ITZ SRSLY A NUMBR\n\
         a R ME\nHUGZ\n\
         I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n\
         TXT MAH BFF k, UR b R MAH a\nHUGZ\nVISIBLE b",
    );
    let p = parse(&src).expect_program(&src);
    let a = analyze(&p);
    let c = emit_c(&p, &a).unwrap();
    let binary = driver::build(&c).unwrap();
    let req =
        RunRequest { n_pes: 4, seed: 1, timeout: Duration::from_secs(30), ..Default::default() };
    let run = binary.run(&req).unwrap();
    for (pe, s) in run.stats.iter().enumerate() {
        assert_eq!(s.barriers, 2, "PE {pe} barrier episodes");
        assert_eq!(s.remote_puts, 1, "PE {pe} one remote put");
    }
    assert!(run.wall > Duration::ZERO);
}

#[test]
fn driver_times_out_deadlocked_binaries() {
    if driver::cc().is_none() {
        eprintln!("skipping: no C compiler");
        return;
    }
    // PE 0 skips the barrier: a guaranteed deadlock at n_pes > 1.
    let src = prog("BOTH SAEM ME AN 0, O RLY?\nNO WAI\nHUGZ\nOIC");
    let p = parse(&src).expect_program(&src);
    let a = analyze(&p);
    let c = emit_c(&p, &a).unwrap();
    let binary = driver::build(&c).unwrap();
    let req =
        RunRequest { n_pes: 2, seed: 1, timeout: Duration::from_millis(400), ..Default::default() };
    match binary.run(&req) {
        Err(driver::DriverError::Timeout(_)) => {}
        other => panic!("expected timeout, got {other:?}"),
    }
}

#[test]
fn driver_surfaces_runtime_faults_with_stderr() {
    if driver::cc().is_none() {
        eprintln!("skipping: no C compiler");
        return;
    }
    let src = prog("VISIBLE QUOSHUNT OF 1 AN 0");
    let p = parse(&src).expect_program(&src);
    let a = analyze(&p);
    let c = emit_c(&p, &a).unwrap();
    let binary = driver::build(&c).unwrap();
    let req =
        RunRequest { n_pes: 2, seed: 1, timeout: Duration::from_secs(10), ..Default::default() };
    match binary.run(&req) {
        Err(driver::DriverError::Program { stderr, .. }) => {
            assert!(stderr.contains("RUN0001"), "{stderr}");
        }
        other => panic!("expected program fault, got {other:?}"),
    }
}

#[test]
fn stub_barrier_and_lock_variants_agree_with_the_default() {
    // The LOL_STUB_BARRIER / LOL_STUB_LOCK env protocol swaps the
    // algorithms, never the results: the canonical lock-increment
    // program must produce identical per-PE output under every
    // barrier × lock combination, with mutual exclusion intact at
    // 6 contending PEs.
    if driver::cc().is_none() {
        eprintln!("skipping: no C compiler");
        return;
    }
    use lol_shmem::{BarrierKind, LockKind};
    let src = prog(
        "WE HAS A x ITZ A NUMBR AN IM SHARIN IT\nHUGZ\n\
         I HAS A k ITZ 0\n\
         TXT MAH BFF k AN STUFF\n\
         IM SRSLY MESIN WIF UR x\nUR x R SUM OF UR x AN 1\nDUN MESIN WIF UR x\n\
         TTYL\nHUGZ\n\
         VISIBLE \"PE \" ME \" SEES X = \" x",
    );
    let p = parse(&src).expect_program(&src);
    let a = analyze(&p);
    let c = emit_c(&p, &a).unwrap();
    let binary = driver::build(&c).unwrap();
    let baseline = binary.run(&RunRequest { n_pes: 6, ..Default::default() }).unwrap().outputs;
    assert!(baseline[0].contains("SEES X = 6"), "{baseline:?}");
    for barrier in BarrierKind::ALL {
        for lock in LockKind::ALL {
            let req = RunRequest { n_pes: 6, barrier, lock, ..Default::default() };
            let run =
                binary.run(&req).unwrap_or_else(|e| panic!("barrier={barrier} lock={lock}: {e}"));
            assert_eq!(run.outputs, baseline, "barrier={barrier} lock={lock}");
        }
    }
}

#[test]
fn stub_dissemination_barrier_orders_remote_puts() {
    // Figure 2 under the dissemination barrier at a non-power-of-two
    // PE count: the barrier must still publish every PE's remote put
    // before any PE reads.
    differential_pes_with(
        "dissem_mp",
        &prog(
            "WE HAS A a ITZ SRSLY A NUMBR\nWE HAS A b ITZ SRSLY A NUMBR\n\
             a R SUM OF ME AN 1\nHUGZ\n\
             I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n\
             TXT MAH BFF k, UR b R MAH a\nHUGZ\n\
             VISIBLE \"PE \" ME \" HAZ \" SUM OF a AN b",
        ),
        &[2, 5, 8],
        |req| req.barrier = lol_shmem::BarrierKind::Dissemination,
    );
}

/// `differential_pes` with a request tweak applied to every C run —
/// the interpreter side keeps its defaults, pinning that the tweak
/// changes timing at most, never output.
fn differential_pes_with(
    tag: &str,
    src: &str,
    pe_counts: &[usize],
    tweak: impl Fn(&mut RunRequest<'_>),
) {
    if driver::cc().is_none() {
        eprintln!("skipping {tag}: no C compiler");
        return;
    }
    let p = parse(src).expect_program(src);
    let a = analyze(&p);
    assert!(a.is_ok(), "sema: {:?}", a.diags.iter().collect::<Vec<_>>());
    let c = emit_c(&p, &a).expect("codegen");
    let binary = driver::build(&c).unwrap_or_else(|e| panic!("{tag}: build failed: {e}"));
    for &n_pes in pe_counts {
        let mut req = RunRequest { n_pes, seed: 7, ..Default::default() };
        tweak(&mut req);
        let run = binary.run(&req).unwrap_or_else(|e| panic!("{tag}@{n_pes}: run failed: {e}"));
        let expect = interp_outputs(src, &[], n_pes);
        assert_eq!(run.outputs, expect, "{tag}: divergence at {n_pes} PEs");
    }
}

#[test]
fn stub_latency_model_charges_remote_accesses() {
    // A 2-PE ping of 40 remote puts under flat:2ms must take ≥ 80ms
    // longer than with the model off, with identical output — the
    // charge sits in lol_stub_xlate, so only remote traffic pays.
    if driver::cc().is_none() {
        eprintln!("skipping: no C compiler");
        return;
    }
    let src = prog(
        "WE HAS A b ITZ SRSLY A NUMBR\n\
         I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n\
         IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 40\n\
         TXT MAH BFF k, UR b R MAH i\nIM OUTTA YR l\n\
         HUGZ\nVISIBLE \"PE \" ME \" B = \" b",
    );
    let p = parse(&src).expect_program(&src);
    let a = analyze(&p);
    let c = emit_c(&p, &a).unwrap();
    let binary = driver::build(&c).unwrap();
    let off = binary.run(&RunRequest { n_pes: 2, ..Default::default() }).unwrap();
    let slow = binary
        .run(&RunRequest {
            n_pes: 2,
            latency: lol_shmem::LatencyModel::Uniform { remote_ns: 2_000_000 },
            ..Default::default()
        })
        .unwrap();
    assert_eq!(off.outputs, slow.outputs, "latency models must never change results");
    assert!(
        slow.wall >= off.wall + Duration::from_millis(60),
        "flat:2ms × 40 remote puts × 2 PEs should dominate: off {:?} vs flat {:?}",
        off.wall,
        slow.wall
    );
}

#[test]
fn stub_mesh_model_charges_by_distance() {
    // On a 1×N mesh (width N, one row), PE 0 → PE (N-1) is N-1 hops:
    // far traffic must cost measurably more than neighbour traffic
    // with the same op count.
    if driver::cc().is_none() {
        eprintln!("skipping: no C compiler");
        return;
    }
    let src = prog(
        "WE HAS A b ITZ SRSLY A NUMBR\n\
         BOTH SAEM ME AN 0, O RLY?\nYA RLY\n\
         IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 30\n\
         TXT MAH BFF 1, UR b R MAH i\n\
         TXT MAH BFF DIFF OF MAH FRENZ AN 1, UR b R MAH i\n\
         IM OUTTA YR l\nOIC\n\
         HUGZ\nVISIBLE \"PE \" ME \" B = \" b",
    );
    let p = parse(&src).expect_program(&src);
    let a = analyze(&p);
    let c = emit_c(&p, &a).unwrap();
    let binary = driver::build(&c).unwrap();
    // 8 PEs on a 1-row mesh: hop(0→1)=1, hop(0→7)=7. base=0 so the
    // wall difference is purely per-hop cost.
    let near_far = |hop_ns: u64| {
        binary
            .run(&RunRequest {
                n_pes: 8,
                latency: lol_shmem::LatencyModel::Mesh2D { width: 8, base_ns: 0, hop_ns },
                ..Default::default()
            })
            .unwrap()
    };
    let cheap = near_far(1_000);
    let pricey = near_far(400_000);
    assert_eq!(cheap.outputs, pricey.outputs);
    // 30 iterations × (1 + 7 hops) × 400µs ≈ 96ms vs ≈ 0.24ms.
    assert!(
        pricey.wall >= cheap.wall + Duration::from_millis(40),
        "per-hop cost must scale the wall: {:?} vs {:?}",
        cheap.wall,
        pricey.wall
    );
}

#[test]
fn seeded_whatevr_is_deterministic_per_seed_in_c() {
    if driver::cc().is_none() {
        eprintln!("skipping: no C compiler");
        return;
    }
    let src = prog("VISIBLE MOD OF WHATEVR AN 1000");
    let p = parse(&src).expect_program(&src);
    let a = analyze(&p);
    let c = emit_c(&p, &a).unwrap();
    let binary = driver::build(&c).unwrap();
    let run = |seed| {
        let req =
            RunRequest { n_pes: 3, seed, timeout: Duration::from_secs(10), ..Default::default() };
        binary.run(&req).unwrap().outputs
    };
    assert_eq!(run(5), run(5), "same seed must reproduce");
    assert_ne!(run(5), run(6), "different seed must differ");
    let outs = run(5);
    assert_ne!(outs[0], outs[1], "PEs draw from distinct streams");
}
