//! End-to-end validation of the C backend: generate C, compile it with
//! the system C compiler against the single-PE OpenSHMEM stub, run the
//! binary, and compare its stdout byte-for-byte with the interpreter
//! running the same program on one PE.
//!
//! This is the `lcc code.lol -o executable.x` pipeline of Section VI.E,
//! minus the real OpenSHMEM library (substituted per DESIGN.md §2).

use lol_c_codegen::{emit_c, SHMEM_STUB_H};
use lol_parser::parse;
use lol_sema::analyze;
use lol_shmem::ShmemConfig;
use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

fn cc_available() -> bool {
    Command::new("cc").arg("--version").output().map(|o| o.status.success()).unwrap_or(false)
}

/// Compile generated C with the stub and run it; returns stdout.
fn compile_and_run(c_source: &str, tag: &str, stdin: &str) -> String {
    let dir = std::env::temp_dir().join(format!("lolcc_test_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("shmem.h"), SHMEM_STUB_H).unwrap();
    let c_path = dir.join("prog.c");
    std::fs::write(&c_path, c_source).unwrap();
    let bin: PathBuf = dir.join("prog");
    let out = Command::new("cc")
        .args(["-std=c99", "-O1", "-I"])
        .arg(&dir)
        .arg("-o")
        .arg(&bin)
        .arg(&c_path)
        .arg("-lm")
        .output()
        .expect("cc failed to start");
    assert!(
        out.status.success(),
        "cc failed:\n{}\n--- source ---\n{c_source}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut child = Command::new(&bin)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("binary failed to start");
    use std::io::Write;
    child.stdin.take().unwrap().write_all(stdin.as_bytes()).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "binary exited nonzero");
    let _ = std::fs::remove_dir_all(&dir);
    String::from_utf8(out.stdout).expect("non-UTF8 program output")
}

/// Generated-C output must match the interpreter at np=1.
fn differential(tag: &str, src: &str, stdin: &[&str]) {
    if !cc_available() {
        eprintln!("skipping {tag}: no C compiler");
        return;
    }
    let p = parse(src).expect_program(src);
    let a = analyze(&p);
    assert!(a.is_ok(), "sema: {:?}", a.diags.iter().collect::<Vec<_>>());
    let c = emit_c(&p, &a).expect("codegen");
    let c_out = compile_and_run(&c, tag, &stdin.join("\n"));
    let input: Vec<String> = stdin.iter().map(|s| s.to_string()).collect();
    let i_out = lol_shmem::run_spmd(ShmemConfig::new(1).timeout(Duration::from_secs(10)), |pe| {
        match lol_interp::run_on_pe(&p, &a, pe, &input) {
            Ok(out) => out,
            Err(e) => pe.fail(e.to_string()),
        }
    })
    .expect("interp")
    .pop()
    .unwrap();
    assert_eq!(c_out, i_out, "C backend diverges from interpreter on {tag}:\n{src}");
}

fn prog(body: &str) -> String {
    format!("HAI 1.2\n{body}\nKTHXBYE")
}

#[test]
fn hello_world_compiles_and_runs() {
    differential("hello", &prog("VISIBLE \"HAI WORLD\""), &[]);
}

#[test]
fn arithmetic_matches() {
    differential(
        "arith",
        &prog(
            "VISIBLE SUM OF 2 AN PRODUKT OF 3 AN 4\n\
             VISIBLE QUOSHUNT OF 7 AN 2\n\
             VISIBLE QUOSHUNT OF 7.0 AN 2\n\
             VISIBLE MOD OF 17 AN 5\n\
             VISIBLE BIGGR OF 3 AN 7\n\
             VISIBLE SMALLR OF 3 AN 7\n\
             VISIBLE DIFF OF 3 AN 10",
        ),
        &[],
    );
}

#[test]
fn comparisons_and_bools_match() {
    differential(
        "bools",
        &prog(
            "VISIBLE BOTH SAEM 1 AN 1\nVISIBLE DIFFRINT 1 AN 2\n\
             VISIBLE BIGGER 4 AN 3\nVISIBLE SMALLR 4 AN 3\n\
             VISIBLE BOTH OF WIN AN FAIL\nVISIBLE EITHER OF WIN AN FAIL\n\
             VISIBLE WON OF WIN AN WIN\nVISIBLE NOT FAIL\n\
             VISIBLE ALL OF WIN AN WIN AN FAIL MKAY\nVISIBLE ANY OF FAIL AN WIN MKAY",
        ),
        &[],
    );
}

#[test]
fn control_flow_matches() {
    differential(
        "ctrl",
        &prog(
            "I HAS A x ITZ 2\n\
             BOTH SAEM x AN 1, O RLY?\nYA RLY\nVISIBLE \"one\"\n\
             MEBBE BOTH SAEM x AN 2\nVISIBLE \"two\"\nNO WAI\nVISIBLE \"other\"\nOIC\n\
             x, WTF?\nOMG 1\nVISIBLE \"a\"\nOMG 2\nVISIBLE \"b\"\nOMG 3\nVISIBLE \"c\"\nGTFO\n\
             OMGWTF\nVISIBLE \"d\"\nOIC",
        ),
        &[],
    );
}

#[test]
fn loops_match() {
    differential(
        "loops",
        &prog(
            "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 5\nVISIBLE SQUAR OF i!\nIM OUTTA YR l\n\
             VISIBLE \"\"\n\
             I HAS A n ITZ 3\n\
             IM IN YR d NERFIN YR j WILE BIGGER n AN 0\nVISIBLE n!\nn R DIFF OF n AN 1\nIM OUTTA YR d\n\
             VISIBLE \"\"",
        ),
        &[],
    );
}

#[test]
fn functions_match() {
    differential(
        "funcs",
        "HAI 1.2\n\
         HOW IZ I fact YR n\n\
         BOTH SAEM n AN 0, O RLY?\nYA RLY\nFOUND YR 1\nOIC\n\
         FOUND YR PRODUKT OF n AN I IZ fact YR DIFF OF n AN 1 MKAY\n\
         IF U SAY SO\n\
         VISIBLE I IZ fact YR 10 MKAY\nKTHXBYE",
        &[],
    );
}

#[test]
fn arrays_match() {
    differential(
        "arrays",
        &prog(
            "I HAS A a ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 6\n\
             IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 6\n\
             a'Z i R QUOSHUNT OF i AN 2.0\nIM OUTTA YR l\n\
             VISIBLE a'Z 5",
        ),
        &[],
    );
}

#[test]
fn casts_and_smoosh_match() {
    differential(
        "casts",
        &prog(
            "VISIBLE MAEK \"42\" A NUMBR\nVISIBLE MAEK 3.7 A NUMBR\nVISIBLE MAEK 3 A NUMBAR\n\
             VISIBLE SMOOSH \"a\" AN 1 AN 2.5 AN WIN MKAY\n\
             I HAS A x ITZ \"5\"\nx IS NOW A NUMBR\nVISIBLE SUM OF x AN 1",
        ),
        &[],
    );
}

#[test]
fn shared_vars_single_pe_match() {
    // At np=1, shared semantics must still hold (own instance).
    differential(
        "shared",
        &prog(
            "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n\
             WE HAS A pos ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 4\n\
             x R SUM OF ME AN 41\nHUGZ\n\
             IM SRSLY MESIN WIF x\nx R SUM OF x AN 1\nDUN MESIN WIF x\n\
             pos'Z 0 R 1.5\npos'Z 3 R 4.5\n\
             TXT MAH BFF 0, MAH pos'Z 1 R UR pos'Z 3\n\
             VISIBLE x \" \" pos'Z 1",
        ),
        &[],
    );
}

#[test]
fn whole_array_copy_matches() {
    differential(
        "arrcopy",
        &prog(
            "WE HAS A src ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 5\n\
             I HAS A dst ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 5\n\
             IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 5\n\
             src'Z i R PRODUKT OF i AN 11\nIM OUTTA YR l\n\
             TXT MAH BFF 0, MAH dst R UR src\n\
             VISIBLE dst'Z 4",
        ),
        &[],
    );
}

#[test]
fn gimmeh_matches() {
    differential(
        "gimmeh",
        &prog("I HAS A x\nGIMMEH x\nI HAS A y\nGIMMEH y\nVISIBLE SMOOSH x AN \"+\" AN y MKAY"),
        &["CHEEZ", "BURGER"],
    );
}

#[test]
fn interpolation_matches() {
    differential(
        "interp",
        &prog("I HAS A cat ITZ \"CEILING\"\nVISIBLE \"HAI :{cat} CAT :) BYE\""),
        &[],
    );
}

#[test]
fn trylock_pattern_matches() {
    differential(
        "trylock",
        &prog(
            "WE HAS A x ITZ A NUMBR AN IM SHARIN IT\n\
             IM MESIN WIF x, O RLY?\nYA RLY\nVISIBLE \"GOT IT\"\nDUN MESIN WIF x\n\
             NO WAI\nVISIBLE \"BUSY\"\nOIC",
        ),
        &[],
    );
}
